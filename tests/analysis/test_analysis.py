"""Tests for metrics, latency breakdowns, overheads and report formatting."""

import pytest

from repro.analysis.latency_breakdown import llc_latency_timelines
from repro.analysis.metrics import (
    geometric_mean,
    normalize,
    normalized_map,
    normalized_series,
    percent_improvement,
    speedup,
    within_percent,
)
from repro.analysis.overheads import compute_overheads
from repro.analysis.report import format_normalized_map, format_series, format_table


class TestMetrics:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_bad_input(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_speedup(self):
        assert speedup(baseline_time=10.0, improved_time=5.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)

    def test_normalized_series(self):
        assert normalized_series([2.0, 4.0, 6.0]) == pytest.approx([1.0, 2.0, 3.0])
        assert normalized_series([]) == []

    def test_normalize_and_percent(self):
        assert normalize(3.0, 2.0) == pytest.approx(1.5)
        assert percent_improvement(10.0, 13.9) == pytest.approx(39.0)

    def test_normalized_map(self):
        result = normalized_map({"BL": 2.0, "Morpheus": 3.0}, "BL")
        assert result["Morpheus"] == pytest.approx(1.5)
        with pytest.raises(KeyError):
            normalized_map({"a": 1.0}, "missing")

    def test_within_percent(self):
        assert within_percent(103.0, 100.0, 3.0)
        assert not within_percent(110.0, 100.0, 3.0)


class TestLatencyBreakdown:
    def test_all_five_timelines_present(self):
        timelines = llc_latency_timelines()
        assert set(timelines) == {
            "conventional_hit",
            "conventional_miss",
            "extended_hit",
            "extended_miss",
            "predicted_extended_miss",
        }

    def test_conventional_miss_around_608ns(self):
        timelines = llc_latency_timelines()
        assert timelines["conventional_miss"].total_ns == pytest.approx(608.0, rel=0.15)

    def test_extended_miss_longer_than_conventional_miss(self):
        timelines = llc_latency_timelines()
        assert timelines["extended_miss"].total_ns > timelines["conventional_miss"].total_ns

    def test_extended_miss_about_27_percent_longer(self):
        timelines = llc_latency_timelines()
        ratio = timelines["extended_miss"].total_ns / timelines["conventional_miss"].total_ns
        assert 1.1 < ratio < 1.45

    def test_predicted_miss_as_fast_as_conventional_miss(self):
        timelines = llc_latency_timelines()
        assert timelines["predicted_extended_miss"].total_ns <= timelines["conventional_miss"].total_ns * 1.05

    def test_hits_faster_than_misses(self):
        timelines = llc_latency_timelines()
        assert timelines["conventional_hit"].total_ns < timelines["conventional_miss"].total_ns
        assert timelines["extended_hit"].total_ns < timelines["extended_miss"].total_ns

    def test_extended_miss_includes_extra_noc_segments(self):
        timelines = llc_latency_timelines()
        assert timelines["extended_miss"].segment("noc_to_cache_sm") > 0
        assert timelines["predicted_extended_miss"].segment("noc_to_cache_sm") == 0


class TestOverheads:
    def test_storage_per_partition_is_21_kib(self):
        overheads = compute_overheads()
        assert overheads.total_bytes_per_partition == 21 * 1024
        assert overheads.bloom_filter_bytes_per_partition == 16 * 1024
        assert overheads.query_logic_bytes_per_partition == 5 * 1024

    def test_storage_fraction_about_4_percent(self):
        overheads = compute_overheads()
        assert overheads.storage_fraction_of_llc_slice == pytest.approx(0.04, abs=0.01)

    def test_power_fraction_below_one_percent(self):
        overheads = compute_overheads()
        assert overheads.power_fraction < 0.011

    def test_total_storage_about_210_kib(self):
        assert compute_overheads().total_bytes == 210 * 1024


class TestReportFormatting:
    def test_format_table_contains_all_cells(self):
        table = format_table(["app", "speedup"], [["kmeans", 2.34], ["cfd", 1.4]], title="Fig2")
        assert "Fig2" in table
        assert "kmeans" in table
        assert "2.34" in table

    def test_format_series(self):
        line = format_series("kmeans", {10: 1.0, 20: 1.6})
        assert "kmeans" in line
        assert "1.600" in line

    def test_format_normalized_map(self):
        text = format_normalized_map("perf", {"BL": 2.0, "Morpheus-ALL": 2.8}, "BL")
        assert "1.400" in text

    def test_format_normalized_map_missing_baseline(self):
        with pytest.raises(KeyError):
            format_normalized_map("perf", {"a": 1.0}, "BL")
