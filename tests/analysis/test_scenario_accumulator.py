"""Streaming scenario aggregation: bit-identity with the list-based reductions."""

from __future__ import annotations

import pytest

from repro.analysis.scenarios import (
    ScenarioAccumulator,
    per_app_timelines,
    phase_slowdowns,
    scenario_energy_j,
    slowdown_stats,
    time_weighted_ipc,
    transition_overheads,
    weighted_percentile,
)
from repro.runner import ExperimentRunner
from repro.scenarios import SCENARIO_LIBRARY, ScenarioEngine, get_scenario
from fidelity_utils import TINY_FIDELITY

SYSTEM = "Morpheus-Basic"
SHAPES = sorted(name for name in SCENARIO_LIBRARY if name != "diurnal")
SHAPE_KWARGS = {"fleet": {"num_phases": 60, "seed": 2}}


def run_shape(tmp_path, name, dedup=True):
    scenario = get_scenario(name, **SHAPE_KWARGS.get(name, {}))
    runner = ExperimentRunner(cache_dir=tmp_path / f"cache-{name}", max_workers=0)
    engine = ScenarioEngine(
        runner=runner, fidelity=TINY_FIDELITY, phase_dedup=dedup
    )
    return engine.run(scenario, SYSTEM)


class TestWeightedPercentile:
    def test_nearest_rank_on_unit_weights(self):
        pairs = [(1.0, 1.0), (2.0, 1.0), (3.0, 1.0), (4.0, 1.0)]
        assert weighted_percentile(pairs, 0.25) == 1.0
        assert weighted_percentile(pairs, 0.50) == 2.0
        assert weighted_percentile(pairs, 1.00) == 4.0

    def test_weights_shift_the_rank(self):
        pairs = [(1.0, 3.0), (10.0, 1.0)]
        assert weighted_percentile(pairs, 0.75) == 1.0
        assert weighted_percentile(pairs, 0.90) == 10.0

    def test_mapping_and_raw_pairs_agree(self):
        pairs = [(2.0, 1.0), (1.0, 0.5), (2.0, 1.0), (3.0, 0.25)]
        grouped = {1.0: 0.5, 2.0: 2.0, 3.0: 0.25}
        for fraction in (0.1, 0.5, 0.9, 0.99, 1.0):
            assert weighted_percentile(pairs, fraction) == weighted_percentile(
                grouped, fraction
            )

    def test_empty_pairs_yield_zero(self):
        assert weighted_percentile([], 0.5) == 0.0

    @pytest.mark.parametrize("fraction", [0.0, -0.5, 1.5])
    def test_rejects_bad_fractions(self, fraction):
        with pytest.raises(ValueError):
            weighted_percentile([(1.0, 1.0)], fraction)


class TestSlowdownStats:
    def test_folds_pairs(self):
        stats = slowdown_stats("spmv", [(1.0, 2.0), (1.5, 1.0), (4.0, 1.0)])
        assert stats.application == "spmv"
        assert stats.weight == 4.0
        assert stats.p50 == 1.0
        assert stats.max == 4.0
        assert stats.p99 == 4.0


class TestAccumulatorBitIdentity:
    @pytest.mark.parametrize("name", SHAPES)
    def test_matches_list_based_reductions_on_every_shape(self, tmp_path, name):
        result = run_shape(tmp_path, name)
        aggregates = ScenarioAccumulator.from_result(result).aggregates()

        assert aggregates.phases == len(result.phases)
        assert aggregates.total_instructions == result.total_instructions
        assert aggregates.compute_cycles == result.compute_cycles
        assert aggregates.transition_cycles == result.transition_cycles
        assert aggregates.total_cycles == result.total_cycles
        assert aggregates.time_weighted_ipc == time_weighted_ipc(result)
        assert aggregates.energy_j == scenario_energy_j(result)
        assert aggregates.transitions == transition_overheads(result)
        assert aggregates.timelines == per_app_timelines(result)
        assert aggregates.slowdowns == {
            application: slowdown_stats(application, pairs)
            for application, pairs in phase_slowdowns(result).items()
        }

    def test_same_aggregates_for_dedup_and_per_phase_runs(self, tmp_path):
        dedup = run_shape(tmp_path / "dedup", "corun_overlap", dedup=True)
        naive = run_shape(tmp_path / "naive", "corun_overlap", dedup=False)
        assert (
            ScenarioAccumulator.from_result(dedup).aggregates()
            == ScenarioAccumulator.from_result(naive).aggregates()
        )

    def test_incremental_add_equals_from_result(self, tmp_path):
        result = run_shape(tmp_path, "bursty")
        accumulator = ScenarioAccumulator(result.scenario)
        for execution in result.phases:
            accumulator.add(execution)
        assert (
            accumulator.aggregates()
            == ScenarioAccumulator.from_result(result).aggregates()
        )

    def test_reference_ipc_drives_the_slowdowns(self, tmp_path):
        result = run_shape(tmp_path, "corun_pair")
        references = {name: 2.0 for name in result.scenario.applications}
        aggregates = ScenarioAccumulator.from_result(
            result, reference_ipc=references
        ).aggregates()
        assert aggregates.slowdowns == {
            application: slowdown_stats(application, pairs)
            for application, pairs in phase_slowdowns(
                result, reference_ipc=references
            ).items()
        }
        # Every other aggregate ignores the reference.
        plain = ScenarioAccumulator.from_result(result).aggregates()
        assert aggregates.time_weighted_ipc == plain.time_weighted_ipc
        assert aggregates.energy_j == plain.energy_j
        assert aggregates.timelines == plain.timelines
