"""Tests for scenario-level analysis (timeline aggregates and reports)."""

from __future__ import annotations

import pytest

from repro.analysis.scenarios import (
    compare_runs,
    phase_table,
    scenario_energy_j,
    time_weighted_ipc,
    transition_overheads,
)
from fidelity_utils import TINY_FIDELITY
from repro.energy.components import DEFAULT_ENERGIES, ComponentEnergies
from repro.runner import ExperimentRunner, using_runner
from repro.scenarios import FixedSplitPolicy, ScenarioEngine, bursty


@pytest.fixture(scope="module")
def runs(tmp_path_factory):
    runner = ExperimentRunner(
        cache_dir=tmp_path_factory.mktemp("cache"), max_workers=0
    )
    engine = ScenarioEngine(runner=runner, fidelity=TINY_FIDELITY)
    scenario = bursty(bursts=2)
    with using_runner(runner):
        dynamic = engine.run(scenario, "Morpheus-ALL")
        static = engine.run(scenario, "Morpheus-ALL", FixedSplitPolicy())
    return dynamic, static


class TestTimelineAggregates:
    def test_time_weighted_ipc_matches_totals(self, runs):
        dynamic, _ = runs
        expected = dynamic.total_instructions / dynamic.total_cycles
        assert time_weighted_ipc(dynamic) == pytest.approx(expected)
        # Transitions cost cycles, so the timeline IPC is strictly below the
        # duration-weighted mean of the per-phase IPCs.
        no_transition_ipc = dynamic.total_instructions / dynamic.compute_cycles
        assert time_weighted_ipc(dynamic) < no_transition_ipc

    def test_transition_overheads_aggregate_per_phase_costs(self, runs):
        dynamic, static = runs
        overheads = transition_overheads(dynamic)
        assert overheads.transitions == 4  # every boundary of two bursts
        assert overheads.total_cycles == pytest.approx(dynamic.transition_cycles)
        assert overheads.flush_cycles > 0 and overheads.warmup_cycles > 0
        assert 0 < overheads.overhead_fraction < 1
        expected_energy = (
            (overheads.flushed_dirty_bytes + overheads.warmup_fill_bytes)
            * DEFAULT_ENERGIES.dram_pj_per_byte
            * 1e-12
        )
        assert overheads.dram_energy_j == pytest.approx(expected_energy)

        static_overheads = transition_overheads(static)
        assert static_overheads.transitions == 0
        assert static_overheads.total_cycles == 0
        assert static_overheads.overhead_fraction == 0

    def test_scenario_energy_scales_phase_energy(self, runs):
        dynamic, _ = runs
        total = scenario_energy_j(dynamic)
        manual = sum(
            execution.stats.energy.total_j
            * (execution.instructions / execution.stats.instructions)
            for execution in dynamic.phases
        ) + transition_overheads(dynamic).dram_energy_j
        assert total == pytest.approx(manual)
        assert total > 0

    def test_energy_respects_custom_constants(self, runs):
        dynamic, _ = runs
        expensive_dram = ComponentEnergies(dram_pj_per_byte=999.0)
        assert (
            transition_overheads(dynamic, expensive_dram).dram_energy_j
            > transition_overheads(dynamic).dram_energy_j
        )


class TestReports:
    def test_phase_table_lists_every_phase(self, runs):
        dynamic, _ = runs
        table = phase_table(dynamic)
        assert "Morpheus-ALL" in table and "dynamic" in table
        assert table.count("kmeans") >= len(dynamic)
        assert "transition" in table

    def test_compare_runs_renders_all_rows(self, runs):
        dynamic, static = runs
        table = compare_runs({"dynamic": dynamic, "static": static})
        assert "dynamic" in table and "static" in table
        assert "tw-IPC" in table and "%" in table
