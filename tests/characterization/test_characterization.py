"""Tests for the extended LLC kernel characterization (Figure 11)."""

import pytest

from repro.characterization.extended_llc_kernel import (
    ExtendedLLCCharacterization,
    WARP_COUNTS,
    combined_configuration,
)


@pytest.fixture
def model() -> ExtendedLLCCharacterization:
    return ExtendedLLCCharacterization()


class TestCapacity:
    def test_register_file_peaks_at_eight_warps(self, model):
        capacities = {w: model.capacity_bytes("register_file", w) for w in WARP_COUNTS}
        assert max(capacities, key=capacities.get) == 8

    def test_register_file_substantial_at_eight_warps(self, model):
        assert model.capacity_bytes("register_file", 8) > 200 * 1024

    def test_l1_and_shared_flat_with_warps(self, model):
        for store in ("l1", "shared_memory"):
            values = [model.capacity_bytes(store, w) for w in (8, 16, 32, 48)]
            assert max(values) <= min(values) * 1.1

    def test_unknown_store_rejected(self, model):
        with pytest.raises(ValueError):
            model.capacity_bytes("texture", 8)


class TestLatency:
    def test_latency_at_least_300ns(self, model):
        for store in ("register_file", "shared_memory", "l1"):
            for warps in WARP_COUNTS:
                assert model.latency_ns(store, warps) >= 290.0

    def test_latency_grows_with_warps(self, model):
        assert model.latency_ns("register_file", 48) > model.latency_ns("register_file", 8)

    def test_register_file_fastest_store(self, model):
        for warps in (8, 16, 32, 48):
            rf = model.latency_ns("register_file", warps)
            assert rf <= model.latency_ns("shared_memory", warps)
            assert rf <= model.latency_ns("l1", warps)

    def test_extended_latency_between_llc_and_dram(self, model):
        # ~160 ns conventional LLC < extended LLC < ~600 ns DRAM (paper §5).
        latency = model.latency_ns("register_file", 32)
        assert 160.0 < latency < 600.0


class TestBandwidth:
    def test_bandwidth_grows_with_warps(self, model):
        assert model.bandwidth_gbps("register_file", 48) > model.bandwidth_gbps("register_file", 1)

    def test_noc_caps_bandwidth_below_40gbps(self, model):
        assert model.bandwidth_gbps("register_file", 48) <= 40.0

    def test_ideal_interconnect_matches_paper_ordering(self, model):
        ideal = model.ideal_interconnect_bandwidths(48)
        assert ideal["register_file"] > ideal["shared_memory"] > ideal["l1"]
        assert ideal["register_file"] == pytest.approx(290.0, rel=0.1)
        assert ideal["shared_memory"] == pytest.approx(106.0, rel=0.1)
        assert ideal["l1"] == pytest.approx(97.0, rel=0.1)

    def test_ideal_much_higher_than_real(self, model):
        real = model.bandwidth_gbps("register_file", 48)
        ideal = model.bandwidth_gbps("register_file", 48, ideal_interconnect=True)
        assert ideal / real > 5.0


class TestEnergyPerByte:
    def test_energy_decreases_with_warps(self, model):
        assert model.energy_pj_per_byte("register_file", 48) < model.energy_pj_per_byte("register_file", 1)

    def test_register_file_cheapest(self, model):
        for warps in (8, 48):
            rf = model.energy_pj_per_byte("register_file", warps)
            assert rf <= model.energy_pj_per_byte("shared_memory", warps)
            assert rf <= model.energy_pj_per_byte("l1", warps)

    def test_best_case_around_53pj(self, model):
        assert model.energy_pj_per_byte("register_file", 48) == pytest.approx(53.0, rel=0.25)


class TestFigure11Assembly:
    def test_all_points_produced(self, model):
        points = model.figure11()
        assert len(points) == 3 * len(WARP_COUNTS)
        assert all(p.capacity_kib > 0 and p.latency_ns > 0 for p in points)

    def test_combined_configuration_headline(self):
        combined = combined_configuration()
        # §5: ~328 KiB capacity, ~34 GB/s bandwidth, ~61 pJ/B for RF(32)+L1(16).
        assert combined["capacity_kib"] == pytest.approx(328.0, rel=0.1)
        assert combined["bandwidth_gbps"] == pytest.approx(34.0, rel=0.25)
        assert combined["energy_pj_per_byte"] == pytest.approx(61.0, rel=0.4)
        assert combined["rf_warps"] == 32
        assert combined["l1_warps"] == 16
