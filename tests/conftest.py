"""Shared pytest fixtures."""

from __future__ import annotations

import pytest

from repro.core.config import MorpheusConfig
from repro.gpu.config import RTX3080_CONFIG, GPUConfig
from repro.systems.fidelity import FAST_FIDELITY
from repro.workloads.applications import get_application


@pytest.fixture
def gpu_config() -> GPUConfig:
    """The baseline RTX 3080 configuration."""
    return RTX3080_CONFIG


@pytest.fixture
def morpheus_config() -> MorpheusConfig:
    """A Morpheus-Basic configuration."""
    return MorpheusConfig()


@pytest.fixture
def morpheus_all_config() -> MorpheusConfig:
    """A Morpheus-ALL configuration (compression + Indirect-MOV ISA)."""
    return MorpheusConfig(enable_compression=True, enable_indirect_mov_isa=True)


@pytest.fixture
def fast_fidelity():
    """Reduced simulation fidelity for quick tests."""
    return FAST_FIDELITY


@pytest.fixture
def kmeans_profile():
    """The kmeans application profile (a thrashing, memory-bound workload)."""
    return get_application("kmeans")


@pytest.fixture
def cfd_profile():
    """The cfd application profile (a saturating, memory-bound workload)."""
    return get_application("cfd")


@pytest.fixture
def compute_bound_profile():
    """A compute-bound application profile."""
    return get_application("mri-q")
