"""Tests for address separation and the extended LLC query logic unit."""

import pytest

from repro.core.address_separation import AddressSeparator, proportional_split
from repro.core.query_logic import (
    DataBuffer,
    ExtendedLLCQueryLogic,
    RequestQueue,
    WarpOp,
    WarpStatusTable,
)
from repro.memory.request import AccessType, MemoryRequest


class TestAddressSeparator:
    def test_no_extended_capacity_routes_everything_conventional(self):
        separator = AddressSeparator(512 * 1024, 0)
        assert all(not separator.is_extended(i * 128) for i in range(1000))

    def test_split_fraction_tracks_capacity_ratio(self):
        separator = AddressSeparator(1 * 1024 * 1024, 3 * 1024 * 1024)
        extended = sum(separator.is_extended(i * 128) for i in range(50_000))
        fraction = extended / 50_000
        assert 0.6 < fraction < 0.9  # extended holds 75 % of the capacity

    def test_routing_is_deterministic(self):
        separator = AddressSeparator(1024 * 1024, 1024 * 1024)
        decisions = [separator.route(i * 128).target for i in range(100)]
        assert decisions == [separator.route(i * 128).target for i in range(100)]

    def test_extended_decision_carries_set(self):
        separator = AddressSeparator(1024 * 1024, 4 * 1024 * 1024, num_extended_sets=64)
        decision = next(
            separator.route(i * 128)
            for i in range(10_000)
            if separator.route(i * 128).target == "extended"
        )
        assert 0 <= decision.extended_set < 64

    def test_same_block_same_target(self):
        separator = AddressSeparator(1024 * 1024, 1024 * 1024)
        for block in range(0, 256):
            address = block * 128
            assert separator.route(address).target == separator.route(address + 64).target

    def test_extended_fraction_property(self):
        separator = AddressSeparator(1024 * 1024, 1024 * 1024)
        assert 0.3 < separator.extended_fraction < 0.7

    def test_negative_address_rejected(self):
        separator = AddressSeparator(1024, 1024)
        with pytest.raises(ValueError):
            separator.route(-1)


class TestProportionalSplit:
    def test_single_region_gets_everything(self):
        assert proportional_split([("register_file", 100)], 4096) == "register_file"

    def test_zero_capacity_region_never_selected(self):
        picks = {
            proportional_split([("register_file", 100), ("l1", 0)], i * 128) for i in range(200)
        }
        assert picks == {"register_file"}

    def test_split_roughly_proportional(self):
        regions = [("register_file", 192 * 1024), ("l1", 64 * 1024)]
        picks = [proportional_split(regions, i * 128) for i in range(10_000)]
        rf_fraction = picks.count("register_file") / len(picks)
        assert 0.6 < rf_fraction < 0.9

    def test_no_regions_rejected(self):
        with pytest.raises(ValueError):
            proportional_split([("a", 0)], 0)


class TestRequestQueue:
    def test_fifo_order(self):
        queue = RequestQueue(capacity=4)
        first = MemoryRequest(address=0)
        second = MemoryRequest(address=128)
        queue.enqueue(first)
        queue.enqueue(second)
        assert queue.dequeue() is first
        assert queue.dequeue() is second
        assert queue.dequeue() is None

    def test_backpressure_when_full(self):
        queue = RequestQueue(capacity=1)
        assert queue.enqueue(MemoryRequest(address=0))
        assert not queue.enqueue(MemoryRequest(address=128))
        assert queue.rejected == 1

    def test_max_occupancy_tracked(self):
        queue = RequestQueue(capacity=8)
        for i in range(5):
            queue.enqueue(MemoryRequest(address=i * 128))
        assert queue.max_occupancy == 5


class TestWarpStatusTable:
    def test_begin_and_complete(self):
        table = WarpStatusTable(num_rows=8)
        request = MemoryRequest(address=256, access_type=AccessType.STORE)
        row = table.begin(2, request)
        assert row.busy
        assert row.op is WarpOp.WRITE
        done = table.complete(2, hit=True)
        assert not done.busy
        assert done.requests_served == 1

    def test_double_begin_rejected(self):
        table = WarpStatusTable(num_rows=2)
        table.begin(0, MemoryRequest(address=0))
        with pytest.raises(RuntimeError):
            table.begin(0, MemoryRequest(address=128))

    def test_complete_idle_rejected(self):
        table = WarpStatusTable(num_rows=2)
        with pytest.raises(RuntimeError):
            table.complete(0, hit=False)

    def test_atomic_op_classified(self):
        table = WarpStatusTable(num_rows=2)
        row = table.begin(1, MemoryRequest(address=0, access_type=AccessType.ATOMIC))
        assert row.op is WarpOp.ATOMIC

    def test_out_of_range_row(self):
        table = WarpStatusTable(num_rows=2)
        with pytest.raises(ValueError):
            table.row(5)


class TestDataBuffer:
    def test_allocate_release_cycle(self):
        buffer = DataBuffer(num_entries=2)
        slot_a = buffer.allocate(0)
        slot_b = buffer.allocate(128)
        assert buffer.allocate(256) is None
        buffer.release(slot_a)
        assert buffer.allocate(256) is not None
        assert slot_b is not None

    def test_release_unallocated_rejected(self):
        buffer = DataBuffer(num_entries=2)
        with pytest.raises(ValueError):
            buffer.release(0)


class TestExtendedLLCQueryLogic:
    def test_admit_dispatch_complete(self):
        logic = ExtendedLLCQueryLogic(num_sets=16)
        request = MemoryRequest(address=640)
        assert logic.admit(request)
        dispatched = logic.dispatch(5)
        assert dispatched is request
        assert logic.warp_status.is_busy(5)
        logic.complete(5, hit=True)
        assert not logic.warp_status.is_busy(5)

    def test_dispatch_blocked_while_warp_busy(self):
        logic = ExtendedLLCQueryLogic(num_sets=4)
        logic.admit(MemoryRequest(address=0))
        logic.admit(MemoryRequest(address=128))
        assert logic.dispatch(1) is not None
        # Same warp still busy: the second request must wait.
        assert logic.dispatch(1) is None
        logic.complete(1, hit=False)
        assert logic.dispatch(1) is not None

    def test_storage_is_about_5_kib(self):
        logic = ExtendedLLCQueryLogic(num_sets=256)
        assert 4 * 1024 <= logic.storage_bytes() <= 8 * 1024

    def test_reset(self):
        logic = ExtendedLLCQueryLogic(num_sets=4)
        logic.admit(MemoryRequest(address=0))
        logic.dispatch(0)
        logic.reset()
        assert len(logic.request_queue) == 0
        assert not logic.warp_status.is_busy(0)
