"""Tests for the Bloom filter and the dual-filter hit/miss predictor."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bloom_filter import BloomFilter
from repro.core.hit_miss_predictor import HitMissPredictor


class TestBloomFilter:
    def test_empty_filter_rejects_everything(self):
        bloom = BloomFilter()
        assert not bloom.query(42)

    def test_inserted_keys_always_found(self):
        bloom = BloomFilter()
        for key in range(50):
            bloom.insert(key)
        assert all(bloom.query(key) for key in range(50))

    def test_no_false_negatives_property(self):
        bloom = BloomFilter(size_bytes=32, num_hashes=4)
        keys = random.Random(7).sample(range(10_000), 64)
        bloom.insert_all(keys)
        assert all(key in bloom for key in keys)

    def test_false_positive_rate_is_low_for_small_sets(self):
        bloom = BloomFilter(size_bytes=32, num_hashes=4)
        bloom.insert_all(range(32))
        false_positives = sum(1 for key in range(1000, 2000) if bloom.query(key))
        assert false_positives / 1000 < 0.25

    def test_clear(self):
        bloom = BloomFilter()
        bloom.insert(1)
        bloom.clear()
        assert not bloom.query(1)
        assert bloom.insertions == 0
        assert bloom.fill_ratio == 0.0

    def test_negative_key_rejected(self):
        bloom = BloomFilter()
        with pytest.raises(ValueError):
            bloom.insert(-1)
        with pytest.raises(ValueError):
            bloom.query(-1)

    def test_fill_ratio_monotonic(self):
        bloom = BloomFilter()
        previous = 0.0
        for key in range(0, 200, 10):
            bloom.insert(key)
            assert bloom.fill_ratio >= previous
            previous = bloom.fill_ratio

    @given(st.sets(st.integers(min_value=0, max_value=1 << 40), min_size=1, max_size=80))
    @settings(max_examples=30, deadline=None)
    def test_membership_property(self, keys):
        bloom = BloomFilter(size_bytes=64)
        bloom.insert_all(keys)
        assert all(bloom.query(key) for key in keys)


class TestHitMissPredictor:
    def _simulate_lru_set(self, predictor, set_index, associativity, accesses):
        """Drive the predictor alongside a reference LRU set; return mispredictions."""
        resident = []  # LRU order, most recent last
        false_negatives = 0
        for tag in accesses:
            predicted_hit = predictor.predict(set_index, tag)
            actual_hit = tag in resident
            predictor.record_outcome(predicted_hit, actual_hit)
            if actual_hit and not predicted_hit:
                false_negatives += 1
            # Update the reference LRU set (insert on miss, touch on hit).
            if actual_hit:
                resident.remove(tag)
            elif len(resident) >= associativity:
                resident.pop(0)
            resident.append(tag)
            predictor.record_access(set_index, tag)
        return false_negatives

    def test_never_false_negative_under_lru(self):
        associativity = 8
        predictor = HitMissPredictor(num_sets=4, associativity=associativity)
        rng = random.Random(11)
        accesses = [rng.randrange(40) for _ in range(2000)]
        false_negatives = self._simulate_lru_set(predictor, 0, associativity, accesses)
        assert false_negatives == 0
        assert predictor.stats.false_negatives == 0

    def test_false_positive_rate_reasonable(self):
        associativity = 8
        predictor = HitMissPredictor(num_sets=1, associativity=associativity)
        rng = random.Random(3)
        accesses = [rng.randrange(256) for _ in range(3000)]
        self._simulate_lru_set(predictor, 0, associativity, accesses)
        assert predictor.stats.false_positive_rate < 0.5

    def test_filters_swap_after_associativity_distinct_tags(self):
        predictor = HitMissPredictor(num_sets=1, associativity=4)
        for tag in range(4):
            predictor.record_access(0, tag)
        assert predictor.stats.swaps == 1

    def test_prediction_counts(self):
        predictor = HitMissPredictor(num_sets=2)
        predictor.predict(0, 10)
        predictor.predict(1, 20)
        assert predictor.stats.predictions == 2
        assert predictor.stats.predicted_misses == 2

    def test_storage_matches_paper(self):
        predictor = HitMissPredictor(num_sets=256, filter_bytes=32)
        assert predictor.storage_bytes() == 16 * 1024

    def test_invalid_set_index(self):
        predictor = HitMissPredictor(num_sets=2)
        with pytest.raises(ValueError):
            predictor.predict(5, 1)

    def test_reset(self):
        predictor = HitMissPredictor(num_sets=2)
        predictor.record_access(0, 1)
        predictor.predict(0, 1)
        predictor.reset()
        assert predictor.stats.predictions == 0
        assert not predictor.predict(0, 1)

    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=10, max_size=400))
    @settings(max_examples=20, deadline=None)
    def test_no_false_negatives_property(self, accesses):
        associativity = 8
        predictor = HitMissPredictor(num_sets=1, associativity=associativity)
        false_negatives = self._simulate_lru_set(predictor, 0, associativity, accesses)
        assert false_negatives == 0
