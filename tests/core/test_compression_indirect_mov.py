"""Tests for BDI compression and the Indirect-MOV model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.compression import (
    BDICompressor,
    CompressionLevel,
    CompressionLevelAllocator,
    effective_capacity_factor,
)
from repro.core.indirect_mov import IndirectMovImplementation, IndirectMovModel


class TestCompressionLevel:
    def test_sizes(self):
        assert CompressionLevel.HIGH.compressed_size == 32
        assert CompressionLevel.LOW.compressed_size == 64
        assert CompressionLevel.UNCOMPRESSED.compressed_size == 128

    def test_ratios(self):
        assert CompressionLevel.HIGH.ratio == 4.0
        assert CompressionLevel.LOW.ratio == 2.0
        assert CompressionLevel.UNCOMPRESSED.ratio == 1.0


class TestBDICompressor:
    def test_small_deltas_compress_high(self):
        compressor = BDICompressor()
        segments = [1000 + i for i in range(32)]
        result = compressor.classify(segments)
        assert result.level is CompressionLevel.HIGH

    def test_medium_deltas_compress_low(self):
        compressor = BDICompressor()
        segments = [10_000 + i * 900 for i in range(32)]
        result = compressor.classify(segments)
        assert result.level is CompressionLevel.LOW

    def test_large_deltas_uncompressed(self):
        compressor = BDICompressor()
        segments = [(i * 2_654_435_761) % (2 ** 32) for i in range(32)]
        result = compressor.classify(segments)
        assert result.level is CompressionLevel.UNCOMPRESSED

    def test_wrong_segment_count_rejected(self):
        with pytest.raises(ValueError):
            BDICompressor().classify([0] * 10)

    def test_out_of_range_segment_rejected(self):
        with pytest.raises(ValueError):
            BDICompressor().classify([2 ** 32] + [0] * 31)

    def test_roundtrip_high(self):
        compressor = BDICompressor()
        segments = [500 + i for i in range(32)]
        result, payload = compressor.compress(segments)
        assert compressor.decompress(result, payload) == segments

    def test_roundtrip_uncompressed(self):
        compressor = BDICompressor()
        segments = [(i * 7_919_993) % (2 ** 32) for i in range(32)]
        result, payload = compressor.compress(segments)
        assert compressor.decompress(result, payload) == segments

    @given(
        st.integers(min_value=0, max_value=2 ** 31),
        st.lists(st.integers(min_value=-120, max_value=120), min_size=31, max_size=31),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, base, deltas):
        compressor = BDICompressor()
        segments = [base] + [max(0, min(2 ** 32 - 1, base + delta)) for delta in deltas]
        result, payload = compressor.compress(segments)
        assert compressor.decompress(result, payload) == segments
        assert result.level in (CompressionLevel.HIGH, CompressionLevel.LOW, CompressionLevel.UNCOMPRESSED)


class TestCompressionLevelAllocator:
    def test_initially_all_uncompressed(self):
        allocator = CompressionLevelAllocator(total_registers=32)
        assert allocator.allocation[CompressionLevel.UNCOMPRESSED] == 32
        assert allocator.capacity_gain() == 1.0

    def test_rebalances_after_epoch(self):
        allocator = CompressionLevelAllocator(total_registers=32, epoch_cycles=100)
        for _ in range(50):
            allocator.observe(CompressionLevel.HIGH, cycles=2)
        assert allocator.epochs_completed >= 1
        assert allocator.allocation[CompressionLevel.HIGH] == 32
        assert allocator.capacity_gain() == pytest.approx(4.0)

    def test_mixed_observation_gain_between_1_and_4(self):
        allocator = CompressionLevelAllocator(total_registers=32, epoch_cycles=64)
        levels = [CompressionLevel.HIGH, CompressionLevel.LOW, CompressionLevel.UNCOMPRESSED]
        for i in range(192):
            allocator.observe(levels[i % 3], cycles=1)
        assert 1.0 < allocator.capacity_gain() < 4.0

    def test_empty_epoch_keeps_allocation(self):
        allocator = CompressionLevelAllocator(total_registers=16, epoch_cycles=10)
        allocator.advance(25)
        assert allocator.allocation[CompressionLevel.UNCOMPRESSED] == 16

    def test_negative_cycles_rejected(self):
        allocator = CompressionLevelAllocator()
        with pytest.raises(ValueError):
            allocator.advance(-1)


class TestEffectiveCapacityFactor:
    def test_all_uncompressed(self):
        assert effective_capacity_factor(0.0, 0.0) == pytest.approx(1.0)

    def test_all_high(self):
        assert effective_capacity_factor(1.0, 0.0) == pytest.approx(4.0)

    def test_mixed(self):
        factor = effective_capacity_factor(0.3, 0.3)
        assert 1.0 < factor < 4.0

    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            effective_capacity_factor(0.8, 0.5)


class TestIndirectMov:
    def test_both_implementations_read_same_value(self):
        model = IndirectMovModel()
        registers = [f"block-{i}" for i in range(32)]
        for index in (0, 5, 31):
            sw = model.read(registers, index, IndirectMovImplementation.SOFTWARE_BRX)
            hw = model.read(registers, index, IndirectMovImplementation.HARDWARE_ISA)
            assert sw == hw == f"block-{index}"

    def test_write_then_read(self):
        model = IndirectMovModel()
        registers = [0] * 32
        model.write(registers, 7, "payload", IndirectMovImplementation.HARDWARE_ISA)
        assert model.read(registers, 7, IndirectMovImplementation.SOFTWARE_BRX) == "payload"

    def test_out_of_range_index(self):
        model = IndirectMovModel()
        with pytest.raises(ValueError):
            model.read([0] * 32, 32, IndirectMovImplementation.SOFTWARE_BRX)

    def test_software_cost_has_three_instructions_and_branches(self):
        cost = IndirectMovModel().cost(IndirectMovImplementation.SOFTWARE_BRX)
        assert cost.instructions == 3
        assert cost.branches == 2

    def test_hardware_cost_is_single_instruction(self):
        cost = IndirectMovModel().cost(IndirectMovImplementation.HARDWARE_ISA)
        assert cost.instructions == 1
        assert cost.branches == 0
        assert cost.register_file_reads == 2

    def test_hardware_is_faster(self):
        model = IndirectMovModel()
        assert model.latency_ns(IndirectMovImplementation.HARDWARE_ISA) < model.latency_ns(
            IndirectMovImplementation.SOFTWARE_BRX
        )
        assert model.speedup_of_hardware() > 1.0
