"""Tests for the Morpheus controller."""

import random

import pytest

from repro.core.config import MorpheusConfig
from repro.core.controller import MorpheusController, PredictorMode
from repro.core.extended_llc import Compressibility, ExtendedLLC
from repro.memory.llc import LLCConfig, LLCPartition
from repro.memory.request import AccessType, MemoryRequest


def make_controller(predictor: str = "bloom", cache_sms: int = 8, **config_kwargs):
    config = MorpheusConfig(predictor=predictor, **config_kwargs)
    extended = ExtendedLLC(
        cache_sm_ids=list(range(cache_sms)),
        config=config,
        compressibility=Compressibility(0.3, 0.3),
    )
    partition = LLCPartition(0, LLCConfig())
    return MorpheusController(partition, extended, config)


class TestControllerRouting:
    def test_requests_split_between_llcs(self):
        controller = make_controller()
        rng = random.Random(5)
        for i in range(500):
            address = rng.randrange(0, 1 << 22) // 128 * 128
            controller.access(MemoryRequest(address=address), now_cycle=i * 4.0)
        assert controller.stats.conventional_requests > 0
        assert controller.stats.extended_requests > 0
        assert (
            controller.stats.conventional_requests + controller.stats.extended_requests
            == controller.stats.requests
        )

    def test_without_extended_llc_everything_is_conventional(self):
        partition = LLCPartition(0, LLCConfig())
        controller = MorpheusController(partition, None, MorpheusConfig())
        for i in range(100):
            controller.access(MemoryRequest(address=i * 128), now_cycle=float(i))
        assert controller.stats.extended_requests == 0
        assert controller.stats.conventional_requests == 100

    def test_repeated_extended_access_becomes_hit(self):
        controller = make_controller()
        # Find an address routed to the extended LLC.
        address = next(
            a for a in range(0, 1 << 22, 128) if controller.separator.is_extended(a)
        )
        first = controller.access(MemoryRequest(address=address), 0.0)
        second = controller.access(MemoryRequest(address=address), 100.0)
        assert first.hit_level == "dram"
        assert second.hit_level == "extended_llc"
        assert second.served_by_extended_llc

    def test_conventional_hit_latency_below_miss_latency(self):
        controller = make_controller()
        address = next(
            a for a in range(0, 1 << 22, 128) if not controller.separator.is_extended(a)
        )
        miss = controller.access(MemoryRequest(address=address), 0.0)
        hit = controller.access(MemoryRequest(address=address), 100.0)
        assert hit.hit_level == "llc"
        assert hit.latency_cycles < miss.latency_cycles


class TestPredictorModes:
    def _run(self, controller, accesses=800, footprint_blocks=2048):
        rng = random.Random(17)
        for i in range(accesses):
            address = rng.randrange(footprint_blocks) * 128
            controller.access(MemoryRequest(address=address), now_cycle=i * 4.0)

    def test_bloom_predictor_never_false_negative(self):
        controller = make_controller("bloom")
        self._run(controller)
        assert controller.predictor.stats.false_negatives == 0

    def test_predicted_misses_skip_extended_roundtrip(self):
        controller = make_controller("bloom")
        self._run(controller)
        assert controller.stats.predicted_misses > 0

    def test_no_prediction_forwards_everything(self):
        controller = make_controller("none")
        self._run(controller)
        assert controller.stats.predicted_misses == 0
        assert controller.predictor_mode is PredictorMode.NONE

    def test_perfect_prediction_has_no_false_positive_trips(self):
        controller = make_controller("perfect")
        self._run(controller)
        assert controller.stats.false_positive_trips == 0

    def test_bloom_latency_not_worse_than_no_prediction(self):
        """Bloom prediction avoids wasted round trips, so average latency is lower."""
        def average_latency(predictor):
            controller = make_controller(predictor)
            rng = random.Random(23)
            total = 0.0
            count = 900
            for i in range(count):
                address = rng.randrange(4096) * 128
                outcome = controller.access(MemoryRequest(address=address), now_cycle=i * 4.0)
                total += outcome.latency_cycles
            return total / count

        assert average_latency("bloom") <= average_latency("none") * 1.02


class TestWritesAndOverheads:
    def test_write_requests_mark_dirty_and_cause_writebacks_eventually(self):
        controller = make_controller(cache_sms=1)
        rng = random.Random(3)
        writebacks = 0
        for i in range(2500):
            address = rng.randrange(16384) * 128
            outcome = controller.access(
                MemoryRequest(address=address, access_type=AccessType.STORE), now_cycle=i * 4.0
            )
            writebacks += len(outcome.writebacks)
        assert writebacks > 0

    def test_storage_overhead_is_21_kib(self):
        controller = make_controller()
        assert controller.storage_overhead_bytes() == 21 * 1024

    def test_extended_sets_per_partition_capped_at_256(self):
        controller = make_controller(cache_sms=60)
        assert controller.extended_sets_per_partition() <= 256

    def test_reset_clears_stats(self):
        controller = make_controller()
        controller.access(MemoryRequest(address=0), 0.0)
        controller.reset()
        assert controller.stats.requests == 0
