"""Tests for the extended LLC stores and the extended LLC kernel."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.compression import CompressionLevel
from repro.core.config import MorpheusConfig
from repro.core.extended_llc import Compressibility, ExtendedLLC, ExtendedLLCKernel
from repro.core.l1_store import L1Store
from repro.core.register_file_store import RegisterFileStore
from repro.core.shared_memory_store import SharedMemoryStore
from repro.core.store_base import ExtendedLLCSet


class TestExtendedLLCSet:
    def test_fill_then_hit(self):
        llc_set = ExtendedLLCSet(base_ways=4)
        llc_set.fill(10)
        assert llc_set.access(10)
        assert not llc_set.access(11)

    def test_lru_eviction(self):
        llc_set = ExtendedLLCSet(base_ways=2)
        llc_set.fill(1)
        llc_set.fill(2)
        llc_set.access(1)
        evicted = llc_set.fill(3)
        assert evicted and evicted[0][0] == 2

    def test_dirty_eviction_flagged(self):
        llc_set = ExtendedLLCSet(base_ways=1)
        llc_set.fill(1, dirty=True)
        evicted = llc_set.fill(2)
        assert evicted == [(1, True)]

    def test_compressed_blocks_increase_effective_ways(self):
        llc_set = ExtendedLLCSet(base_ways=2, compression_enabled=True)
        for tag in range(8):
            llc_set.fill(tag, compression=CompressionLevel.HIGH)
        # 2 ways x 128 B can hold 8 blocks of 32 B each.
        assert llc_set.occupancy() == 8

    def test_occupancy_bytes_never_exceeds_physical(self):
        llc_set = ExtendedLLCSet(base_ways=4, compression_enabled=True)
        for tag in range(100):
            level = CompressionLevel.HIGH if tag % 2 else CompressionLevel.UNCOMPRESSED
            llc_set.fill(tag, compression=level)
            assert llc_set.occupancy_bytes() <= llc_set.physical_bytes

    @given(st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=300))
    @settings(max_examples=25, deadline=None)
    def test_capacity_invariant_property(self, tags):
        llc_set = ExtendedLLCSet(base_ways=8, compression_enabled=True)
        levels = list(CompressionLevel)
        for tag in tags:
            llc_set.fill(tag, dirty=tag % 3 == 0, compression=levels[tag % 3])
        assert llc_set.occupancy_bytes() <= llc_set.physical_bytes


class TestRegisterFileStore:
    def test_single_warp_limited_by_registers_per_thread(self):
        capacity = RegisterFileStore.capacity_bytes_for_warps(1)
        assert capacity < 40 * 1024  # far below the 256 KiB register file

    def test_eight_warps_near_full_register_file(self):
        capacity = RegisterFileStore.capacity_bytes_for_warps(8)
        assert 200 * 1024 <= capacity <= 256 * 1024

    def test_48_warps_matches_paper_layout(self):
        # 48 sets x 32 blocks x 128 B = 192 KiB (Figure 8).
        assert RegisterFileStore.capacity_bytes_for_warps(48) == 192 * 1024

    def test_capacity_peaks_at_eight_warps(self):
        capacities = {w: RegisterFileStore.capacity_bytes_for_warps(w) for w in (1, 8, 16, 32, 48)}
        assert max(capacities, key=capacities.get) == 8

    def test_store_access_and_fill(self):
        store = RegisterFileStore(num_warps=4)
        assert not store.access(0, tag=7)
        store.fill(0, tag=7)
        assert store.access(0, tag=7)
        assert store.stats.hits == 1

    def test_invalid_set_rejected(self):
        store = RegisterFileStore(num_warps=2)
        with pytest.raises(ValueError):
            store.access(5, tag=0)


class TestL1AndSharedStores:
    def test_l1_capacity_flat_with_warps(self):
        assert L1Store.capacity_bytes_for_warps(8) == pytest.approx(
            L1Store.capacity_bytes_for_warps(48), rel=0.05
        )

    def test_shared_capacity_flat_with_warps(self):
        assert SharedMemoryStore.capacity_bytes_for_warps(8) == pytest.approx(
            SharedMemoryStore.capacity_bytes_for_warps(48), rel=0.05
        )

    def test_l1_never_compresses(self):
        store = L1Store(num_warps=4, compression_enabled=True)
        assert not store.compression_enabled

    def test_shared_memory_tags_live_in_register_file(self):
        assert SharedMemoryStore(num_warps=4).tag_storage_location() == "register_file"

    def test_l1_bypasses_conventional_llc(self):
        assert L1Store(num_warps=4).fills_bypass_conventional_llc()


class TestExtendedLLCKernel:
    def test_capacity_combines_stores(self):
        kernel = ExtendedLLCKernel(sm_id=0, config=MorpheusConfig())
        total = kernel.physical_capacity_bytes()
        assert total > 256 * 1024  # register file portion plus L1 portion

    def test_compression_raises_effective_capacity(self):
        config = MorpheusConfig(enable_compression=True)
        kernel = ExtendedLLCKernel(
            sm_id=0, config=config, compressibility=Compressibility(0.5, 0.3)
        )
        assert kernel.effective_capacity_bytes() > kernel.physical_capacity_bytes()

    def test_miss_then_fill_then_hit(self):
        kernel = ExtendedLLCKernel(sm_id=0, config=MorpheusConfig())
        result = kernel.access(0, address=4096)
        assert not result.hit
        kernel.fill(0, address=4096)
        assert kernel.access(0, address=4096).hit

    def test_dirty_victims_reported_as_writebacks(self):
        config = MorpheusConfig(rf_warps=1, l1_warps=0)
        kernel = ExtendedLLCKernel(
            sm_id=0, config=config, register_file_bytes=8 * 1024, l1_shared_bytes=4 * 1024
        )
        ways = kernel.register_file_store.ways_per_set
        writebacks = []
        for i in range(ways + 4):
            result = kernel.fill(0, address=i * 128, dirty=True)
            writebacks.extend(result.writebacks)
        assert writebacks

    def test_indirect_mov_isa_reduces_latency(self):
        base = ExtendedLLCKernel(sm_id=0, config=MorpheusConfig())
        fast = ExtendedLLCKernel(sm_id=0, config=MorpheusConfig(enable_indirect_mov_isa=True))
        base.fill(0, address=0)
        fast.fill(0, address=0)
        assert fast.access(0, address=0).service_latency_ns < base.access(0, address=0).service_latency_ns

    def test_needs_at_least_one_store(self):
        with pytest.raises(ValueError):
            MorpheusConfig(rf_warps=0, l1_warps=0, shared_memory_warps=0)


class TestExtendedLLC:
    def test_aggregate_capacity_scales_with_cache_sms(self):
        config = MorpheusConfig()
        small = ExtendedLLC(cache_sm_ids=[0, 1], config=config)
        large = ExtendedLLC(cache_sm_ids=list(range(8)), config=config)
        assert large.physical_capacity_bytes() == 4 * small.physical_capacity_bytes()

    def test_set_ownership_round_trips(self):
        extended = ExtendedLLC(cache_sm_ids=[3, 7, 9], config=MorpheusConfig())
        for global_set in range(0, extended.total_sets, 17):
            sm_id, kernel, local = extended.owner_of_set(global_set)
            assert sm_id in (3, 7, 9)
            assert 0 <= local < kernel.num_sets

    def test_fill_then_resident(self):
        extended = ExtendedLLC(cache_sm_ids=[0], config=MorpheusConfig())
        assert not extended.resident(5, 1024)
        extended.fill(5, 1024)
        assert extended.resident(5, 1024)

    def test_access_hits_after_fill(self):
        extended = ExtendedLLC(cache_sm_ids=[0, 1], config=MorpheusConfig())
        extended.fill(10, 2048)
        assert extended.access(10, 2048).hit

    def test_bandwidth_scales_with_cache_sms(self):
        config = MorpheusConfig()
        assert ExtendedLLC([0, 1], config).aggregate_bandwidth_gbps() == pytest.approx(
            2 * config.timing.per_sm_extended_bandwidth_gbps
        )

    def test_empty_extended_llc_disabled(self):
        extended = ExtendedLLC(cache_sm_ids=[], config=MorpheusConfig())
        assert not extended.enabled

    def test_reset_clears_contents(self):
        extended = ExtendedLLC(cache_sm_ids=[0], config=MorpheusConfig())
        extended.fill(0, 512)
        extended.reset()
        assert not extended.resident(0, 512)
