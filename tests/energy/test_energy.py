"""Tests for the energy model."""

import pytest

from repro.energy.components import ComponentEnergies, DEFAULT_ENERGIES
from repro.energy.model import EnergyBreakdown, EnergyModel


class TestComponents:
    def test_extended_llc_costs_more_per_byte_than_conventional(self):
        assert DEFAULT_ENERGIES.extended_llc_pj_per_byte > DEFAULT_ENERGIES.llc_pj_per_byte

    def test_dram_is_most_expensive_per_byte(self):
        e = DEFAULT_ENERGIES
        assert e.dram_pj_per_byte > e.extended_llc_pj_per_byte > e.llc_pj_per_byte

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            ComponentEnergies(dram_pj_per_byte=-1.0)
        with pytest.raises(ValueError):
            ComponentEnergies(core_clock_ghz=0.0)


class TestEnergyModel:
    def _compute(self, **overrides):
        defaults = dict(
            execution_cycles=1e9,
            instructions=2e9,
            dram_bytes=1e11,
            llc_bytes=5e10,
            extended_llc_bytes=0.0,
            l1_bytes=2e11,
            noc_bytes=1e11,
            num_compute_sms=68,
        )
        defaults.update(overrides)
        return EnergyModel().compute(**defaults)

    def test_total_is_sum_of_components(self):
        breakdown = self._compute()
        assert breakdown.total_j == pytest.approx(sum(breakdown.as_dict().values()))

    def test_more_dram_traffic_costs_more_energy(self):
        low = self._compute(dram_bytes=1e10)
        high = self._compute(dram_bytes=2e11)
        assert high.total_j > low.total_j

    def test_power_gating_saves_static_energy(self):
        all_on = self._compute(num_compute_sms=68, num_gated_sms=0)
        gated = self._compute(num_compute_sms=24, num_gated_sms=44)
        assert gated.static_j < all_on.static_j

    def test_morpheus_controller_energy_only_when_enabled(self):
        off = self._compute(morpheus_enabled=False)
        on = self._compute(morpheus_enabled=True)
        assert off.morpheus_controller_j == 0.0
        assert on.morpheus_controller_j > 0.0

    def test_cache_mode_sms_cost_less_static_power_than_compute(self):
        compute_heavy = self._compute(num_compute_sms=68, num_cache_sms=0)
        cache_heavy = self._compute(num_compute_sms=24, num_cache_sms=44)
        assert cache_heavy.static_j < compute_heavy.static_j

    def test_performance_per_watt(self):
        model = EnergyModel()
        breakdown = self._compute()
        perf_per_watt = model.performance_per_watt(ipc=20.0, breakdown=breakdown, execution_cycles=1e9)
        assert perf_per_watt > 0
        # Same energy, higher IPC -> better efficiency.
        assert model.performance_per_watt(40.0, breakdown, 1e9) > perf_per_watt

    def test_average_power_reasonable_for_gpu(self):
        model = EnergyModel()
        breakdown = self._compute()
        watts = model.average_power_watts(breakdown, execution_cycles=1e9)
        assert 50 < watts < 600

    def test_controller_power_fraction_below_one_percent_at_300w(self):
        model = EnergyModel()
        fraction = model.morpheus_controller_power_fraction(total_watts=300.0)
        assert fraction < 0.01

    def test_zero_cycles_handled(self):
        model = EnergyModel()
        breakdown = EnergyBreakdown()
        assert model.performance_per_watt(10.0, breakdown, 0.0) == 0.0
        assert model.average_power_watts(breakdown, 0.0) == 0.0

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            self._compute(execution_cycles=-1.0)
