"""The shared tiny test fidelity (not collected by pytest).

Importable from every test directory because pytest prepends
``tests/`` (the root conftest's directory) to ``sys.path``.
"""

from __future__ import annotations

from repro.systems.fidelity import Fidelity

#: Tiny fidelity so each leaf simulation takes milliseconds.
TINY_FIDELITY = Fidelity(
    capacity_scale=1.0 / 64.0,
    trace_accesses=800,
    warmup_accesses=200,
    search_trace_accesses=400,
    search_warmup_accesses=100,
)
