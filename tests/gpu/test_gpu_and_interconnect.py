"""Tests for the GPU substrate (config, warps, SMs, schedulers) and the interconnect."""

import pytest

from repro.gpu.config import GPUConfig, RTX3080_CONFIG
from repro.gpu.kernel import KernelLaunch, ThreadBlock
from repro.gpu.scheduler import CTAScheduler, TwoLevelWarpScheduler
from repro.gpu.sm import CoreMode, StreamingMultiprocessor
from repro.gpu.warp import Warp, WarpState
from repro.interconnect.crossbar import CrossbarLink, CrossbarSwitch
from repro.interconnect.network import InterconnectConfig, InterconnectNetwork
from repro.memory.request import AccessType, MemoryRequest


class TestGPUConfig:
    def test_rtx3080_table1_parameters(self):
        config = RTX3080_CONFIG
        assert config.num_sms == 68
        assert config.llc.capacity_bytes == 5 * 1024 * 1024
        assert config.llc.num_partitions == 10
        assert config.dram.capacity_bytes == 10 * 1024 ** 3
        assert config.l1_shared_bytes_per_sm == 128 * 1024
        assert config.register_file_bytes_per_sm == 256 * 1024
        assert config.warps_per_sm == 48

    def test_with_num_sms(self):
        assert RTX3080_CONFIG.with_num_sms(20).num_sms == 20
        with pytest.raises(ValueError):
            RTX3080_CONFIG.with_num_sms(100)

    def test_with_llc_scale(self):
        scaled = RTX3080_CONFIG.with_llc_scale(4)
        assert scaled.llc.capacity_bytes == pytest.approx(20 * 1024 * 1024, rel=0.01)

    def test_frequency_boost_scales_memory_system(self):
        boosted = RTX3080_CONFIG.with_frequency_boost(1.2)
        assert boosted.dram.bandwidth_gbps_per_channel == pytest.approx(76.0 * 1.2)
        assert boosted.llc.hit_latency_cycles < RTX3080_CONFIG.llc.hit_latency_cycles
        assert boosted.interconnect.bytes_per_cycle_per_port > RTX3080_CONFIG.interconnect.bytes_per_cycle_per_port

    def test_with_extra_l1(self):
        bigger = RTX3080_CONFIG.with_extra_l1(100 * 1024)
        assert bigger.l1_shared_bytes_per_sm == 228 * 1024

    def test_partition_mismatch_rejected(self):
        from repro.memory.llc import LLCConfig

        with pytest.raises(ValueError):
            GPUConfig(llc=LLCConfig(num_partitions=5, capacity_bytes=5 * 1024 * 1024))


class TestWarp:
    def test_memory_request_lifecycle(self):
        warp = Warp(warp_id=0)
        warp.issue_memory_request(request_id=1, wakeup_cycle=100.0)
        assert warp.state is WarpState.WAITING_MEMORY
        warp.complete_memory_request(1)
        assert warp.is_ready

    def test_double_issue_rejected(self):
        warp = Warp(warp_id=0)
        warp.issue_memory_request(1, 10.0)
        with pytest.raises(RuntimeError):
            warp.issue_memory_request(2, 20.0)

    def test_complete_wrong_request_rejected(self):
        warp = Warp(warp_id=0)
        warp.issue_memory_request(1, 10.0)
        with pytest.raises(RuntimeError):
            warp.complete_memory_request(99)

    def test_finished_warp_cannot_execute(self):
        warp = Warp(warp_id=0)
        warp.finish()
        with pytest.raises(RuntimeError):
            warp.execute_instructions(1)


class TestKernel:
    def test_thread_block_warps(self):
        assert ThreadBlock(0, 256).num_warps() == 8
        assert ThreadBlock(0, 250).num_warps() == 8

    def test_kernel_totals(self):
        kernel = KernelLaunch(name="kmeans", grid_size=100, cta_threads=256)
        assert kernel.total_threads == 25_600
        assert kernel.total_warps() == 800
        assert len(kernel.thread_blocks()) == 100

    def test_invalid_grid_rejected(self):
        with pytest.raises(ValueError):
            KernelLaunch(name="x", grid_size=0)


class TestSchedulers:
    def test_two_level_scheduler_round_robin(self):
        warps = [Warp(warp_id=i) for i in range(6)]
        scheduler = TwoLevelWarpScheduler(warps, active_set_size=4)
        picked = {scheduler.select_warp(0.0).warp_id for _ in range(8)}
        assert picked  # some warps issue
        assert len(scheduler.active_warps) <= 4

    def test_waiting_warps_demoted_and_woken(self):
        warps = [Warp(warp_id=i) for i in range(2)]
        scheduler = TwoLevelWarpScheduler(warps, active_set_size=2)
        first = scheduler.select_warp(0.0)
        first.issue_memory_request(request_id=1, wakeup_cycle=50.0)
        scheduler.select_warp(1.0)
        assert first in scheduler.pending_warps or first.is_ready is False
        woken = scheduler.select_warp(60.0)
        assert woken is not None

    def test_all_finished(self):
        warps = [Warp(warp_id=i) for i in range(3)]
        scheduler = TwoLevelWarpScheduler(warps)
        for warp in warps:
            warp.finish()
        assert scheduler.all_finished()

    def test_cta_scheduler_respects_capacity(self):
        scheduler = CTAScheduler(compute_sm_ids=[0, 1], warps_per_sm=8)
        kernel = KernelLaunch(name="k", grid_size=4, cta_threads=256)  # 8 warps per CTA
        assignments = scheduler.assign(kernel)
        assert len(assignments) == 2
        assert set(scheduler.occupancy().values()) == {8}

    def test_cta_scheduler_release(self):
        scheduler = CTAScheduler(compute_sm_ids=[0], warps_per_sm=8)
        kernel = KernelLaunch(name="k", grid_size=1, cta_threads=256)
        scheduler.assign(kernel)
        scheduler.release(0, 8)
        assert scheduler.occupancy()[0] == 0


class TestStreamingMultiprocessor:
    def test_compute_mode_l1_access(self):
        sm = StreamingMultiprocessor(0, RTX3080_CONFIG)
        hit, _ = sm.access_l1(MemoryRequest(address=0))
        assert not hit
        hit, _ = sm.access_l1(MemoryRequest(address=0))
        assert hit
        assert sm.stats.l1_hit_rate == pytest.approx(0.5)

    def test_cache_mode_rejects_application_accesses(self):
        sm = StreamingMultiprocessor(0, RTX3080_CONFIG, mode=CoreMode.CACHE)
        with pytest.raises(RuntimeError):
            sm.access_l1(MemoryRequest(address=0))

    def test_mode_switch_flushes_l1(self):
        sm = StreamingMultiprocessor(0, RTX3080_CONFIG)
        sm.access_l1(MemoryRequest(address=0))
        sm.set_mode(CoreMode.CACHE)
        assert sm.l1.occupancy() == 0
        assert sm.is_cache_mode

    def test_capacities_exposed(self):
        sm = StreamingMultiprocessor(0, RTX3080_CONFIG)
        assert sm.register_file_bytes() == 256 * 1024
        assert sm.unified_l1_shared_bytes() == 128 * 1024


class TestInterconnect:
    def test_link_serialization_and_queueing(self):
        link = CrossbarLink(bytes_per_cycle=64, base_latency_cycles=10)
        first = link.transfer(128, now_cycle=0.0)
        second = link.transfer(128, now_cycle=0.0)
        assert second > first  # the second transfer queues behind the first

    def test_switch_tracks_bytes(self):
        switch = CrossbarSwitch(bytes_per_cycle=64, base_latency_cycles=5)
        switch.send_request(32, 0.0)
        switch.send_response(128, 0.0)
        assert switch.total_bytes() == 160

    def test_network_round_trip_latency(self):
        network = InterconnectNetwork()
        latency = network.traverse(0, 32, now_cycle=0.0)
        assert latency >= 2 * network.config.one_way_latency_cycles

    def test_network_stats(self):
        network = InterconnectNetwork()
        for i in range(10):
            network.traverse(i % network.config.num_partitions, 32, now_cycle=i * 2.0)
        assert network.stats.traversals == 10
        assert network.stats.average_latency_cycles > 0
        assert network.total_load_bytes() > 0

    def test_invalid_partition_rejected(self):
        network = InterconnectNetwork()
        with pytest.raises(ValueError):
            network.traverse(99, 32, 0.0)

    def test_congestion_penalty_kicks_in_at_high_load(self):
        config = InterconnectConfig(bytes_per_cycle_per_port=1.0, congestion_knee=0.1)
        network = InterconnectNetwork(config)
        # Saturate port 0 and compare against an unloaded traversal.
        unloaded = network.traverse(1, 32, 0.0, elapsed_cycles=1000.0)
        for _ in range(50):
            network.traverse(0, 32, 0.0, elapsed_cycles=10.0)
        loaded = network.traverse(0, 32, 0.0, elapsed_cycles=10.0)
        assert loaded > unloaded

    def test_reset(self):
        network = InterconnectNetwork()
        network.traverse(0, 32, 0.0)
        network.reset()
        assert network.stats.traversals == 0
        assert network.total_load_bytes() == 0
