"""Integration tests: the simulator, the evaluated systems and the paper's headline behaviours.

These tests run the trace-driven simulation at reduced (FAST) fidelity, so
they check qualitative behaviour — who wins and in which direction — rather
than exact figures.
"""

import pytest

from repro.core.config import MorpheusConfig
from repro.sim.engine import MemoryHierarchyEngine
from repro.sim.simulator import GPUSimulator, SimulationConfig, simulate
from repro.gpu.config import RTX3080_CONFIG
from repro.systems.fidelity import FAST_FIDELITY
from repro.systems.morpheus_system import MorpheusSystem, MorpheusVariant
from repro.systems.registry import evaluate_application
from repro.workloads.applications import get_application
from repro.workloads.generator import TraceGenerator

FAST_KWARGS = dict(
    capacity_scale=FAST_FIDELITY.capacity_scale,
    trace_accesses=FAST_FIDELITY.trace_accesses,
    warmup_accesses=FAST_FIDELITY.warmup_accesses,
)


def run(profile_name: str, **kwargs) -> "SimulationStats":
    profile = get_application(profile_name)
    merged = {**FAST_KWARGS, **kwargs}
    return simulate(profile, SimulationConfig(**merged))


class TestEngine:
    def test_engine_counts_accesses(self):
        profile = get_application("cfd")
        engine = MemoryHierarchyEngine(RTX3080_CONFIG, capacity_scale=1 / 32)
        trace = TraceGenerator(profile, 20, scale=1 / 32, seed=1).generate(2000)
        counters = engine.run(trace)
        assert counters.llc_accesses == 2000
        assert counters.llc_hits + counters.dram_accesses >= 2000 * 0.95

    def test_morpheus_engine_routes_to_extended_llc(self):
        profile = get_application("cfd")
        engine = MemoryHierarchyEngine(
            RTX3080_CONFIG,
            morpheus=MorpheusConfig(),
            cache_sm_ids=list(range(20, 40)),
            capacity_scale=1 / 32,
        )
        trace = TraceGenerator(profile, 20, scale=1 / 32, seed=1).generate(3000)
        counters = engine.run(trace)
        assert counters.extended_requests > 0
        assert counters.extended_hits > 0

    def test_reset_counters_preserves_cache_contents(self):
        profile = get_application("cfd")
        engine = MemoryHierarchyEngine(RTX3080_CONFIG, capacity_scale=1 / 32)
        generator = TraceGenerator(profile, 20, scale=1 / 32, seed=1)
        engine.run(generator.generate(2000))
        occupancy_before = sum(p.cache.occupancy() for p in engine.llc.partitions)
        engine.reset_counters()
        assert engine.counters.llc_accesses == 0
        assert sum(p.cache.occupancy() for p in engine.llc.partitions) == occupancy_before


class TestSimulatorBasics:
    def test_simulation_produces_positive_ipc(self):
        stats = run("cfd", num_compute_sms=34)
        assert stats.ipc > 0
        assert stats.execution_cycles > 0
        assert stats.energy is not None
        assert stats.performance_per_watt > 0

    def test_memory_bound_app_is_memory_limited_at_high_sm_count(self):
        stats = run("p-bfs", num_compute_sms=68)
        assert stats.bottleneck in ("dram_bandwidth", "latency", "noc_bandwidth")

    def test_compute_bound_app_is_compute_limited(self):
        stats = run("mri-q", num_compute_sms=68)
        assert stats.bottleneck == "compute"

    def test_compute_bound_scales_with_sms(self):
        low = run("mri-q", num_compute_sms=10)
        high = run("mri-q", num_compute_sms=68)
        assert high.ipc / low.ipc == pytest.approx(6.8, rel=0.05)

    def test_memory_bound_saturates_with_sms(self):
        low = run("stencil", num_compute_sms=10)
        high = run("stencil", num_compute_sms=68)
        assert high.ipc / low.ipc < 2.0

    def test_larger_llc_helps_memory_bound_app(self):
        base = run("kmeans", num_compute_sms=24, power_gate_unused=True)
        bigger = run(
            "kmeans",
            num_compute_sms=24,
            power_gate_unused=True,
            gpu=RTX3080_CONFIG.with_llc_scale(4),
        )
        assert bigger.ipc > base.ipc

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(num_compute_sms=60, num_cache_sms=20)
        with pytest.raises(ValueError):
            SimulationConfig(num_cache_sms=4)  # cache SMs without Morpheus


class TestMorpheusBehaviour:
    def test_morpheus_beats_same_compute_sms_without_it(self):
        baseline = run("kmeans", num_compute_sms=24, power_gate_unused=True)
        morpheus = run(
            "kmeans",
            num_compute_sms=24,
            num_cache_sms=44,
            morpheus=MorpheusConfig(enable_compression=True, enable_indirect_mov_isa=True),
            power_gate_unused=True,
        )
        assert morpheus.ipc > baseline.ipc
        assert morpheus.llc_hit_rate > baseline.llc_hit_rate

    def test_morpheus_reduces_offchip_traffic(self):
        baseline = run("kmeans", num_compute_sms=24, power_gate_unused=True)
        morpheus = run(
            "kmeans",
            num_compute_sms=24,
            num_cache_sms=44,
            morpheus=MorpheusConfig(),
            power_gate_unused=True,
        )
        assert morpheus.dram_accesses_per_ki < baseline.dram_accesses_per_ki

    def test_predictor_has_no_false_negatives(self):
        morpheus = run(
            "cfd",
            num_compute_sms=34,
            num_cache_sms=34,
            morpheus=MorpheusConfig(),
            power_gate_unused=True,
        )
        assert morpheus.predictor_false_negatives == 0

    def test_compression_increases_extended_capacity_benefit(self):
        basic = run(
            "kmeans", num_compute_sms=24, num_cache_sms=44,
            morpheus=MorpheusConfig(), power_gate_unused=True,
        )
        compressed = run(
            "kmeans", num_compute_sms=24, num_cache_sms=44,
            morpheus=MorpheusConfig(enable_compression=True), power_gate_unused=True,
        )
        assert compressed.ipc >= basic.ipc

    def test_morpheus_increases_noc_load(self):
        baseline = run("kmeans", num_compute_sms=24, power_gate_unused=True)
        morpheus = run(
            "kmeans", num_compute_sms=24, num_cache_sms=44,
            morpheus=MorpheusConfig(), power_gate_unused=True,
        )
        assert morpheus.noc_bytes > baseline.noc_bytes


class TestEvaluatedSystems:
    def test_morpheus_all_beats_bl_on_thrashing_app(self):
        bl = evaluate_application("BL", "kmeans", fidelity=FAST_FIDELITY)
        morpheus = evaluate_application("Morpheus-ALL", "kmeans", fidelity=FAST_FIDELITY)
        assert morpheus.execution_cycles < bl.execution_cycles

    def test_morpheus_energy_efficiency_beats_bl(self):
        bl = evaluate_application("BL", "kmeans", fidelity=FAST_FIDELITY)
        morpheus = evaluate_application("Morpheus-ALL", "kmeans", fidelity=FAST_FIDELITY)
        assert morpheus.performance_per_watt > bl.performance_per_watt

    def test_morpheus_does_not_hurt_compute_bound_apps(self):
        bl = evaluate_application("BL", "mri-q", fidelity=FAST_FIDELITY)
        morpheus = evaluate_application("Morpheus-ALL", "mri-q", fidelity=FAST_FIDELITY)
        assert morpheus.ipc == pytest.approx(bl.ipc, rel=0.05)
        assert morpheus.num_cache_sms == 0

    def test_morpheus_operating_point_uses_cache_sms_for_memory_bound(self):
        system = MorpheusSystem(MorpheusVariant.ALL, fidelity=FAST_FIDELITY)
        point = system.operating_point(get_application("kmeans"))
        assert point.num_cache_sms > 0
        assert point.num_compute_sms + point.num_cache_sms <= 68

    def test_ibl_uses_fewer_sms_for_thrashing_app(self):
        ibl = evaluate_application("IBL", "kmeans", fidelity=FAST_FIDELITY)
        assert ibl.num_compute_sms < 68
