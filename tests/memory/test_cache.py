"""Tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.cache import CacheSet, CacheStats, SetAssociativeCache


class TestCacheStats:
    def test_empty_rates(self):
        stats = CacheStats()
        assert stats.hit_rate == 0.0
        assert stats.miss_rate == 0.0

    def test_rates(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.accesses == 4
        assert stats.hit_rate == pytest.approx(0.75)
        assert stats.miss_rate == pytest.approx(0.25)

    def test_merge(self):
        merged = CacheStats(hits=1, misses=2).merge(CacheStats(hits=3, misses=4, evictions=5))
        assert merged.hits == 4
        assert merged.misses == 6
        assert merged.evictions == 5


class TestCacheSet:
    def test_miss_then_hit(self):
        cache_set = CacheSet(associativity=2)
        assert not cache_set.access(1, is_write=False)
        cache_set.fill(1)
        assert cache_set.access(1, is_write=False)

    def test_lru_eviction_order(self):
        cache_set = CacheSet(associativity=2)
        cache_set.fill(1)
        cache_set.fill(2)
        cache_set.access(1, is_write=False)  # 2 becomes LRU
        victim = cache_set.fill(3)
        assert victim is not None
        assert victim.tag == 2

    def test_dirty_bit_set_on_write_hit(self):
        cache_set = CacheSet(associativity=2)
        cache_set.fill(1)
        cache_set.access(1, is_write=True)
        victim = None
        cache_set.fill(2)
        victim = cache_set.fill(3)
        # One of the fills evicted tag 1 or 2; tag 1 must have been dirty when evicted.
        assert victim is not None

    def test_invalidate(self):
        cache_set = CacheSet(associativity=2)
        cache_set.fill(7)
        assert cache_set.invalidate(7) is not None
        assert cache_set.invalidate(7) is None
        assert cache_set.occupancy() == 0


class TestSetAssociativeCache:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(capacity_bytes=1000, block_size=128, associativity=4)

    def test_block_size_power_of_two(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(capacity_bytes=4096, block_size=100)

    def test_num_sets(self):
        cache = SetAssociativeCache(capacity_bytes=64 * 1024, block_size=128, associativity=16)
        assert cache.num_sets == 32

    def test_miss_then_hit_same_block(self):
        cache = SetAssociativeCache(capacity_bytes=8 * 1024, block_size=128, associativity=4)
        hit, _ = cache.access(0x1000)
        assert not hit
        hit, _ = cache.access(0x1000)
        assert hit
        # Same block, different offset.
        hit, _ = cache.access(0x1000 + 64)
        assert hit

    def test_hit_rate_tracked(self):
        cache = SetAssociativeCache(capacity_bytes=8 * 1024, block_size=128, associativity=4)
        cache.access(0)
        cache.access(0)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_dirty_eviction_produces_writeback_address(self):
        cache = SetAssociativeCache(capacity_bytes=512, block_size=128, associativity=1)
        cache.access(0, is_write=True)
        # The cache has 4 sets; address 512 maps to set 0 as well.
        hit, writeback = cache.access(512, is_write=False)
        assert not hit
        assert writeback == 0

    def test_clean_eviction_no_writeback(self):
        cache = SetAssociativeCache(capacity_bytes=512, block_size=128, associativity=1)
        cache.access(0, is_write=False)
        _, writeback = cache.access(512, is_write=False)
        assert writeback is None

    def test_working_set_within_capacity_all_hits_after_warmup(self):
        cache = SetAssociativeCache(capacity_bytes=16 * 1024, block_size=128, associativity=8)
        addresses = [i * 128 for i in range(64)]  # 8 KiB working set
        for address in addresses:
            cache.access(address)
        cache.reset_stats()
        for address in addresses:
            hit, _ = cache.access(address)
            assert hit
        assert cache.stats.hit_rate == 1.0

    def test_working_set_exceeding_capacity_misses(self):
        cache = SetAssociativeCache(capacity_bytes=4 * 1024, block_size=128, associativity=4)
        addresses = [i * 128 for i in range(256)]  # 32 KiB footprint
        for _ in range(2):
            for address in addresses:
                cache.access(address)
        assert cache.stats.miss_rate > 0.5

    def test_flush(self):
        cache = SetAssociativeCache(capacity_bytes=4 * 1024, block_size=128, associativity=4)
        cache.access(0, is_write=True)
        cache.access(128)
        dirty = cache.flush()
        assert dirty == 1
        assert cache.occupancy() == 0

    def test_fill_and_probe(self):
        cache = SetAssociativeCache(capacity_bytes=4 * 1024, block_size=128, associativity=4)
        assert not cache.probe(0x200)
        cache.fill(0x200)
        assert cache.probe(0x200)

    def test_invalidate(self):
        cache = SetAssociativeCache(capacity_bytes=4 * 1024, block_size=128, associativity=4)
        cache.fill(0x200)
        assert cache.invalidate(0x200)
        assert not cache.invalidate(0x200)

    def test_occupancy_bytes(self):
        cache = SetAssociativeCache(capacity_bytes=4 * 1024, block_size=128, associativity=4)
        cache.fill(0)
        cache.fill(128)
        assert cache.occupancy_bytes() == 256

    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=300))
    @settings(max_examples=25, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, addresses):
        cache = SetAssociativeCache(capacity_bytes=2 * 1024, block_size=128, associativity=2)
        for address in addresses:
            cache.access(address, is_write=address % 3 == 0)
        assert cache.occupancy_bytes() <= cache.capacity_bytes

    @given(st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=200))
    @settings(max_examples=25, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, addresses):
        cache = SetAssociativeCache(capacity_bytes=4 * 1024, block_size=128, associativity=4)
        for address in addresses:
            cache.access(address)
        assert cache.stats.accesses == len(addresses)

    @given(st.integers(min_value=0, max_value=1 << 30))
    @settings(max_examples=50, deadline=None)
    def test_set_index_within_range(self, address):
        cache = SetAssociativeCache(capacity_bytes=64 * 1024, block_size=128, associativity=16)
        assert 0 <= cache.set_index(address) < cache.num_sets
