"""Tests for the banked LLC and the DRAM model."""

import pytest

from repro.memory.dram import DRAMConfig, DRAMModel
from repro.memory.llc import BankedLLC, LLCConfig, LLCPartition
from repro.memory.request import AccessType, MemoryRequest


class TestLLCConfig:
    def test_partition_capacity(self):
        config = LLCConfig()
        assert config.partition_capacity_bytes == 5 * 1024 * 1024 // 10

    def test_scaled_capacity_multiplies(self):
        config = LLCConfig().scaled_capacity(4.0)
        assert config.capacity_bytes == pytest.approx(4 * 5 * 1024 * 1024, rel=0.01)

    def test_scaled_capacity_rejects_non_positive(self):
        with pytest.raises(ValueError):
            LLCConfig().scaled_capacity(0)

    def test_capacity_must_divide_partitions(self):
        with pytest.raises(ValueError):
            LLCConfig(capacity_bytes=1001, num_partitions=10)


class TestLLCPartition:
    def test_miss_then_hit(self):
        partition = LLCPartition(0, LLCConfig())
        request = MemoryRequest(address=0)
        hit, latency, _ = partition.access(request, 0.0)
        assert not hit
        assert latency >= partition.config.hit_latency_cycles
        hit, _, _ = partition.access(request, 10.0)
        assert hit

    def test_dirty_eviction_reports_writeback(self):
        config = LLCConfig(capacity_bytes=10 * 2048, associativity=1, num_partitions=10)
        partition = LLCPartition(0, config)
        sets = partition.cache.num_sets
        store = MemoryRequest(address=0, access_type=AccessType.STORE)
        partition.access(store, 0.0)
        conflicting = MemoryRequest(address=sets * 128)
        _, _, writeback = partition.access(conflicting, 1.0)
        assert writeback == 0

    def test_throughput_accounting(self):
        partition = LLCPartition(0, LLCConfig())
        partition.access(MemoryRequest(address=0), 0.0)
        assert partition.throughput_gbps(elapsed_cycles=100.0) > 0.0

    def test_reset(self):
        partition = LLCPartition(0, LLCConfig())
        partition.access(MemoryRequest(address=0), 0.0)
        partition.reset()
        assert partition.cache.stats.accesses == 0
        assert partition.requests_served == 0


class TestBankedLLC:
    def test_total_capacity_close_to_config(self):
        llc = BankedLLC()
        assert llc.total_capacity_bytes() == pytest.approx(5 * 1024 * 1024, rel=0.05)

    def test_requests_routed_by_address(self):
        llc = BankedLLC()
        request = MemoryRequest(address=128 * 3)
        assert llc.partition_for(request.address).partition_id == 3

    def test_aggregate_stats(self):
        llc = BankedLLC()
        for i in range(20):
            llc.access(MemoryRequest(address=i * 128), now_cycle=float(i))
        stats = llc.aggregate_stats()
        assert stats.accesses == 20
        assert stats.misses == 20

    def test_reset(self):
        llc = BankedLLC()
        llc.access(MemoryRequest(address=0))
        llc.reset()
        assert llc.aggregate_stats().accesses == 0


class TestDRAMConfig:
    def test_bytes_per_cycle(self):
        config = DRAMConfig()
        assert config.bytes_per_cycle_per_channel == pytest.approx(76.0 / 1.44)

    def test_total_bandwidth(self):
        config = DRAMConfig()
        assert config.total_bandwidth_gbps == pytest.approx(760.0)

    def test_scaled_raises_bandwidth_and_lowers_latency(self):
        boosted = DRAMConfig().scaled(1.2)
        base = DRAMConfig()
        assert boosted.bandwidth_gbps_per_channel > base.bandwidth_gbps_per_channel
        assert boosted.access_latency_cycles < base.access_latency_cycles

    def test_invalid_row_buffer_rate(self):
        with pytest.raises(ValueError):
            DRAMConfig(row_buffer_hit_rate=1.5)


class TestDRAMModel:
    def test_latency_includes_core_latency(self):
        dram = DRAMModel()
        latency = dram.access(MemoryRequest(address=0), now_cycle=0.0)
        assert latency >= dram.config.access_latency_cycles * dram.config.row_buffer_hit_latency_factor

    def test_queueing_under_load(self):
        config = DRAMConfig(num_channels=1, bandwidth_gbps_per_channel=1.44)  # 1 B/cycle
        dram = DRAMModel(config)
        # Saturate the single channel: issue many requests at the same cycle.
        latencies = [dram.access(MemoryRequest(address=0), now_cycle=0.0) for _ in range(10)]
        assert latencies[-1] > latencies[0]

    def test_channel_interleaving(self):
        dram = DRAMModel()
        for i in range(10):
            dram.access(MemoryRequest(address=i * 128), now_cycle=0.0)
        per_channel = dram.per_channel_accesses()
        assert all(count == 1 for count in per_channel.values())

    def test_bandwidth_utilization_bounded(self):
        dram = DRAMModel()
        for i in range(100):
            dram.access(MemoryRequest(address=i * 128), now_cycle=float(i))
        assert 0.0 < dram.bandwidth_utilization(elapsed_cycles=100.0) <= 1.0

    def test_reset(self):
        dram = DRAMModel()
        dram.access(MemoryRequest(address=0), 0.0)
        dram.reset()
        assert dram.total_accesses == 0
        assert dram.total_bytes == 0
