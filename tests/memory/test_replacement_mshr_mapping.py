"""Tests for replacement policies, MSHRs and address mapping."""

import pytest

from repro.memory.address_mapping import AddressMapping
from repro.memory.mshr import MSHRFile
from repro.memory.replacement import FIFOPolicy, LRUPolicy, RandomPolicy, make_replacement_policy
from repro.memory.request import MemoryRequest


class TestLRUPolicy:
    def test_victim_is_least_recently_used(self):
        policy = LRUPolicy(4)
        for way in range(4):
            policy.on_insert(way)
        policy.on_access(0)
        assert policy.victim(range(4)) == 1

    def test_insert_counts_as_use(self):
        policy = LRUPolicy(2)
        policy.on_insert(0)
        policy.on_insert(1)
        assert policy.victim([0, 1]) == 0

    def test_invalidate_makes_way_preferred_victim(self):
        policy = LRUPolicy(2)
        policy.on_insert(0)
        policy.on_insert(1)
        policy.on_invalidate(1)
        assert policy.victim([0, 1]) == 1

    def test_out_of_range_way_rejected(self):
        policy = LRUPolicy(2)
        with pytest.raises(ValueError):
            policy.on_access(5)

    def test_empty_victim_rejected(self):
        policy = LRUPolicy(2)
        with pytest.raises(ValueError):
            policy.victim([])


class TestFIFOPolicy:
    def test_victim_is_oldest_insertion(self):
        policy = FIFOPolicy(3)
        policy.on_insert(2)
        policy.on_insert(0)
        policy.on_insert(1)
        policy.on_access(2)  # access must not change FIFO order
        assert policy.victim([0, 1, 2]) == 2


class TestRandomPolicy:
    def test_victim_among_candidates(self):
        policy = RandomPolicy(8, seed=3)
        for way in range(8):
            policy.on_insert(way)
        assert policy.victim([2, 5]) in (2, 5)

    def test_deterministic_with_seed(self):
        first = RandomPolicy(8, seed=9)
        second = RandomPolicy(8, seed=9)
        picks_a = [first.victim(range(8)) for _ in range(10)]
        picks_b = [second.victim(range(8)) for _ in range(10)]
        assert picks_a == picks_b


class TestFactory:
    def test_known_policies(self):
        assert isinstance(make_replacement_policy("lru", 4), LRUPolicy)
        assert isinstance(make_replacement_policy("fifo", 4), FIFOPolicy)
        assert isinstance(make_replacement_policy("random", 4), RandomPolicy)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_replacement_policy("plru", 4)


class TestMSHRFile:
    def test_allocate_and_release(self):
        mshrs = MSHRFile(num_entries=2)
        request = MemoryRequest(address=0)
        entry = mshrs.allocate(request, block_address=0)
        assert entry is not None
        waiting = mshrs.release(0)
        assert waiting == [request]
        assert len(mshrs) == 0

    def test_merge_same_block(self):
        mshrs = MSHRFile(num_entries=2)
        first = MemoryRequest(address=0)
        second = MemoryRequest(address=64)
        mshrs.allocate(first, block_address=0)
        entry = mshrs.allocate(second, block_address=0)
        assert entry is not None
        assert entry.request_count == 2
        assert mshrs.merges == 1
        assert len(mshrs) == 1

    def test_full_file_stalls(self):
        mshrs = MSHRFile(num_entries=1)
        mshrs.allocate(MemoryRequest(address=0), block_address=0)
        assert mshrs.allocate(MemoryRequest(address=128), block_address=128) is None
        assert mshrs.stalls == 1

    def test_merge_limit_stalls(self):
        mshrs = MSHRFile(num_entries=4, max_merged_per_entry=1)
        mshrs.allocate(MemoryRequest(address=0), block_address=0)
        assert mshrs.allocate(MemoryRequest(address=0), block_address=0) is not None
        assert mshrs.allocate(MemoryRequest(address=0), block_address=0) is None

    def test_release_unknown_block(self):
        mshrs = MSHRFile()
        assert mshrs.release(1234) == []


class TestAddressMapping:
    def test_round_robin_partitioning(self):
        mapping = AddressMapping(num_partitions=10, block_size=128)
        partitions = [mapping.partition_of(i * 128) for i in range(20)]
        assert partitions[:10] == list(range(10))
        assert partitions[10:] == list(range(10))

    def test_same_block_same_partition(self):
        mapping = AddressMapping(num_partitions=10, block_size=128)
        assert mapping.partition_of(1280) == mapping.partition_of(1280 + 127)

    def test_channels_default_to_partitions(self):
        mapping = AddressMapping(num_partitions=8)
        assert mapping.num_channels == 8

    def test_addresses_for_partition(self):
        mapping = AddressMapping(num_partitions=10, block_size=128)
        addresses = mapping.addresses_for_partition(3, count=5)
        assert len(addresses) == 5
        assert all(mapping.partition_of(address) == 3 for address in addresses)

    def test_invalid_partition_rejected(self):
        mapping = AddressMapping(num_partitions=4)
        with pytest.raises(ValueError):
            mapping.addresses_for_partition(7, count=1)

    def test_negative_address_rejected(self):
        mapping = AddressMapping()
        with pytest.raises(ValueError):
            mapping.partition_of(-1)
