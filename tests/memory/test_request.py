"""Tests for memory requests and responses."""

import pytest

from repro.memory.request import AccessType, MemoryRequest, MemoryResponse, reset_request_ids


class TestAccessType:
    def test_load_is_not_write(self):
        assert not AccessType.LOAD.is_write

    def test_store_is_write(self):
        assert AccessType.STORE.is_write

    def test_atomic_is_write(self):
        assert AccessType.ATOMIC.is_write


class TestMemoryRequest:
    def test_defaults(self):
        request = MemoryRequest(address=0x1000)
        assert request.access_type is AccessType.LOAD
        assert request.size_bytes == 128
        assert not request.is_write

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            MemoryRequest(address=-1)

    def test_non_positive_size_rejected(self):
        with pytest.raises(ValueError):
            MemoryRequest(address=0, size_bytes=0)

    def test_block_address_aligns_down(self):
        request = MemoryRequest(address=1000)
        assert request.block_address(128) == 896

    def test_block_address_requires_power_of_two(self):
        request = MemoryRequest(address=1000)
        with pytest.raises(ValueError):
            request.block_address(100)

    def test_request_ids_are_unique(self):
        first = MemoryRequest(address=0)
        second = MemoryRequest(address=0)
        assert first.request_id != second.request_id

    def test_reset_request_ids(self):
        reset_request_ids(100)
        request = MemoryRequest(address=0)
        assert request.request_id == 100

    def test_copy_for_block_preserves_metadata(self):
        request = MemoryRequest(address=1000, access_type=AccessType.STORE, sm_id=5, warp_id=3)
        copy = request.copy_for_block(2048)
        assert copy.address == 2048
        assert copy.access_type is AccessType.STORE
        assert copy.sm_id == 5
        assert copy.warp_id == 3
        assert copy.request_id != request.request_id

    def test_store_is_write(self):
        request = MemoryRequest(address=0, access_type=AccessType.STORE)
        assert request.is_write


class TestMemoryResponse:
    def test_offchip_detection(self):
        request = MemoryRequest(address=0)
        response = MemoryResponse(request=request, latency_cycles=100.0, hit_level="dram")
        assert response.is_offchip

    def test_llc_hit_is_not_offchip(self):
        request = MemoryRequest(address=0)
        response = MemoryResponse(request=request, latency_cycles=100.0, hit_level="llc")
        assert not response.is_offchip

    def test_negative_latency_rejected(self):
        request = MemoryRequest(address=0)
        with pytest.raises(ValueError):
            MemoryResponse(request=request, latency_cycles=-1.0, hit_level="llc")
