"""Shared helpers for the runner test suites (not collected by pytest)."""

from __future__ import annotations

from repro.sim.simulator import SimulationConfig
from repro.systems.fidelity import Fidelity

#: Tiny fidelity so each leaf simulation takes milliseconds.
TINY_FIDELITY = Fidelity(
    capacity_scale=1.0 / 64.0,
    trace_accesses=800,
    warmup_accesses=200,
    search_trace_accesses=400,
    search_warmup_accesses=100,
)


def tiny_config(**overrides) -> SimulationConfig:
    """A tiny-fidelity :class:`SimulationConfig` with per-test overrides."""
    base = dict(
        num_compute_sms=20,
        power_gate_unused=True,
        capacity_scale=TINY_FIDELITY.capacity_scale,
        trace_accesses=TINY_FIDELITY.trace_accesses,
        warmup_accesses=TINY_FIDELITY.warmup_accesses,
        system_name="test",
        seed=1,
    )
    base.update(overrides)
    return SimulationConfig(**base)
