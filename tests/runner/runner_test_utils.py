"""Shared helpers for the runner test suites (not collected by pytest)."""

from __future__ import annotations

from fidelity_utils import TINY_FIDELITY
from repro.sim.simulator import SimulationConfig

__all__ = ["TINY_FIDELITY", "tiny_config"]


def tiny_config(**overrides) -> SimulationConfig:
    """A tiny-fidelity :class:`SimulationConfig` with per-test overrides."""
    base = dict(
        num_compute_sms=20,
        power_gate_unused=True,
        capacity_scale=TINY_FIDELITY.capacity_scale,
        trace_accesses=TINY_FIDELITY.trace_accesses,
        warmup_accesses=TINY_FIDELITY.warmup_accesses,
        system_name="test",
        seed=1,
    )
    base.update(overrides)
    return SimulationConfig(**base)
