"""End-to-end coverage of the ``fidelity="analytic"`` tier.

The load-bearing contracts:

* analytic measurements are deterministic closed-form predictions — equal
  across seeds, no trace is generated;
* ``replay_mode`` is a replay-keyed config field, so analytic and replay
  runs of the same leaf occupy **distinct** measurement-tier entries (zero
  contamination in either direction), and the cache reports the tier's
  per-mode composition;
* the analytic tier flows through every execution surface: ``simulate``,
  the ``ExperimentSpec`` fidelities axis, evaluated systems and the
  scenario engine (each accepting the ``"analytic"`` preset name).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.runner import ExperimentRunner, using_runner
from repro.runner.cache import main as cache_cli
from repro.runner.spec import ExperimentSpec, RunSpec
from repro.scenarios import Residency, ScenarioEngine, ScenarioPhase, ScenarioSpec
from repro.sim.simulator import SimulationConfig
from repro.systems.fidelity import ANALYTIC_FIDELITY, Fidelity, get_fidelity
from repro.gpu.config import RTX3080_CONFIG
from repro.workloads.applications import get_application
from fidelity_utils import TINY_FIDELITY


def _config(replay_mode: str, seed: int = 1, **kwargs) -> SimulationConfig:
    defaults = dict(
        gpu=RTX3080_CONFIG,
        num_compute_sms=34,
        power_gate_unused=True,
        capacity_scale=TINY_FIDELITY.capacity_scale,
        trace_accesses=TINY_FIDELITY.trace_accesses,
        warmup_accesses=TINY_FIDELITY.warmup_accesses,
        system_name="analytic-test",
        replay_mode=replay_mode,
        seed=seed,
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


def _runner(tmp_path) -> ExperimentRunner:
    return ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=0)


class TestAnalyticMeasurements:
    def test_deterministic_and_seed_independent(self, tmp_path, kmeans_profile):
        runner = _runner(tmp_path)
        first = runner.measurement_for(kmeans_profile, _config("analytic", seed=1))
        again = runner.measurement_for(kmeans_profile, _config("analytic", seed=1))
        other_seed = runner.measurement_for(
            kmeans_profile, _config("analytic", seed=2)
        )
        # Closed-form math: no trace, no seed sensitivity — yet the seed is
        # still replay-keyed, so each seed owns its (identical) entry.
        assert first.to_jsonable() == again.to_jsonable()
        assert first.to_jsonable() == other_seed.to_jsonable()
        spec_one = RunSpec(kmeans_profile, _config("analytic", seed=1))
        spec_two = RunSpec(kmeans_profile, _config("analytic", seed=2))
        assert spec_one.replay_key() != spec_two.replay_key()

    def test_mode_is_replay_keyed_zero_collisions(self, tmp_path, kmeans_profile):
        runner = _runner(tmp_path)
        analytic_config = _config("analytic")
        replay_config = _config("replay")
        assert (
            RunSpec(kmeans_profile, analytic_config).replay_key()
            != RunSpec(kmeans_profile, replay_config).replay_key()
        )
        analytic = runner.simulate(kmeans_profile, analytic_config)
        replayed = runner.simulate(kmeans_profile, replay_config)
        # Two leaves, two measurement entries — one per mode, never shared.
        assert runner.disk_cache.measurement_mode_counts() == {
            "analytic": 1,
            "replay": 1,
        }
        # The analytic prediction is a different model; identical stats
        # would mean one tier's measurement leaked into the other.
        assert analytic.ipc != replayed.ipc

    def test_warm_analytic_rerun_costs_zero_replays(self, tmp_path, kmeans_profile):
        runner = _runner(tmp_path)
        runner.simulate(kmeans_profile, _config("analytic"))
        assert runner.replays == 1
        warm = ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=0)
        warm.simulate(kmeans_profile, _config("analytic"))
        assert warm.replays == 0

    def test_analytic_batch_scoring_shares_one_prediction(
        self, tmp_path, kmeans_profile
    ):
        runner = _runner(tmp_path)
        base = _config("analytic")
        variants = [
            dataclasses.replace(base, mlp_per_sm=mlp, peak_warp_ipc_per_sm=peak)
            for mlp in (80.0, 160.0, 320.0, 480.0)
            for peak in (2.0, 4.0, 6.0)
        ]
        batched = runner.score_many(kmeans_profile, variants)
        assert runner.replays == 1
        expected = [runner.simulate(kmeans_profile, config) for config in variants]
        for got, want in zip(batched, expected):
            assert dataclasses.asdict(got) == dataclasses.asdict(want)

    def test_cache_cli_reports_per_mode_counts(self, tmp_path, kmeans_profile, capsys):
        runner = _runner(tmp_path)
        runner.simulate(kmeans_profile, _config("analytic"))
        runner.simulate(kmeans_profile, _config("replay"))
        assert cache_cli(["--cache-dir", str(tmp_path / "cache"), "stats"]) == 0
        out = capsys.readouterr().out
        assert "mode=analytic" in out
        assert "mode=replay" in out


class TestFidelityPresets:
    def test_get_fidelity_coercion(self):
        assert get_fidelity("analytic") is ANALYTIC_FIDELITY
        assert get_fidelity(TINY_FIDELITY) is TINY_FIDELITY
        with pytest.raises(ValueError, match="unknown fidelity preset"):
            get_fidelity("turbo")
        with pytest.raises(TypeError):
            get_fidelity(3)

    def test_fidelity_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            Fidelity(mode="oracle")


#: Replay-tier tiny fidelity paired with its analytic twin for axis sweeps.
ANALYTIC_TINY = dataclasses.replace(TINY_FIDELITY, mode="analytic")


class TestExecutionSurfaces:
    def test_fidelities_axis_runs_both_tiers_side_by_side(self, tmp_path):
        spec = ExperimentSpec(
            systems=("sweep",),
            applications=("kmeans",),
            fidelity=TINY_FIDELITY,
            sm_counts=(34,),
            fidelities=(TINY_FIDELITY, ANALYTIC_TINY),
        )
        plan = spec.expand()
        assert len(plan.cells) == 2
        assert {cell.fidelity.mode for cell in plan.cells} == {"replay", "analytic"}
        runner = _runner(tmp_path)
        result = runner.run_plan(plan)
        assert len(result) == 2
        assert runner.disk_cache.measurement_mode_counts() == {
            "analytic": 1,
            "replay": 1,
        }

    def test_fidelities_axis_accepts_preset_names(self):
        spec = ExperimentSpec(
            systems=("IBL",),
            applications=("kmeans",),
            fidelities=("analytic", "fast"),
        )
        assert spec.fidelities == (ANALYTIC_FIDELITY, get_fidelity("fast"))

    def test_evaluated_system_runs_analytically(self, tmp_path, kmeans_profile):
        from repro.systems.morpheus_system import MorpheusSystem, MorpheusVariant

        runner = _runner(tmp_path)
        with using_runner(runner):
            system = MorpheusSystem(
                MorpheusVariant.BASIC, fidelity=ANALYTIC_FIDELITY
            )
            stats = system.evaluate(kmeans_profile)
        assert stats.ipc > 0
        assert set(runner.disk_cache.measurement_mode_counts()) == {"analytic"}

    def test_scenario_engine_accepts_the_analytic_preset(self, tmp_path):
        scenario = ScenarioSpec(
            name="analytic-timeline",
            phases=(
                ScenarioPhase(residents=(Residency("kmeans", 28),)),
                ScenarioPhase(residents=(Residency("spmv", 24),)),
            ),
        )
        runner = _runner(tmp_path)
        engine = ScenarioEngine(runner=runner, fidelity="analytic")
        assert engine.fidelity is ANALYTIC_FIDELITY
        result = engine.run(scenario, "Morpheus-Basic")
        assert len(result.phases) == 2
        assert set(runner.disk_cache.measurement_mode_counts()) == {"analytic"}
        # The fidelity (and with it the mode) is part of the scenario run
        # key, so analytic aggregates never shadow replay-tier ones.
        replay_engine = ScenarioEngine(runner=runner, fidelity=TINY_FIDELITY)
        assert engine.run_key(scenario, "Morpheus-Basic") != replay_engine.run_key(
            scenario, "Morpheus-Basic"
        )
