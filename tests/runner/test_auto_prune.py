"""Tests for the REPRO_CACHE_MAX_BYTES automatic cache prune."""

from __future__ import annotations

import pytest

from repro.runner import ExperimentRunner, ExperimentSpec, using_runner
from repro.runner.runner import CACHE_MAX_BYTES_ENV
from runner_test_utils import TINY_FIDELITY, tiny_config


def _run_plan(tmp_path, **runner_kwargs) -> ExperimentRunner:
    runner = ExperimentRunner(
        cache_dir=tmp_path / "cache", max_workers=0, **runner_kwargs
    )
    spec = ExperimentSpec(
        systems=("BL",), applications=("kmeans",), fidelity=TINY_FIDELITY
    )
    with using_runner(runner):
        runner.run_plan(spec)
    return runner


class TestAutoPrune:
    def test_plan_completion_applies_size_cap(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, "1")
        runner = _run_plan(tmp_path)
        # The plan stored entries, then the auto-prune capped the cache.
        assert runner.disk_cache.stores > 0
        assert runner.disk_cache.size_bytes() <= 1

    def test_unset_variable_leaves_cache_alone(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_MAX_BYTES_ENV, raising=False)
        runner = _run_plan(tmp_path)
        assert runner.maybe_auto_prune() == 0
        assert len(runner.disk_cache) > 0

    def test_generous_cap_keeps_entries(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, str(10**9))
        runner = _run_plan(tmp_path)
        assert len(runner.disk_cache) > 0

    def test_unparsable_value_warns_and_skips(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, "lots")
        runner = ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=0)
        with pytest.warns(RuntimeWarning, match="unparsable"):
            removed = runner.maybe_auto_prune()
        assert removed == 0

    def test_negative_cap_and_disabled_disk_cache_are_noops(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, "-5")
        runner = _run_plan(tmp_path)
        assert len(runner.disk_cache) > 0  # negative cap ignored
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, "0")
        memory_only = ExperimentRunner(
            cache_dir=tmp_path / "other", max_workers=0, use_disk_cache=False
        )
        assert memory_only.maybe_auto_prune() == 0

    def test_scenario_runs_also_apply_the_cap(self, tmp_path, monkeypatch):
        from repro.scenarios import ScenarioEngine, steady

        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, "1")
        runner = ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=0)
        engine = ScenarioEngine(runner=runner, fidelity=TINY_FIDELITY)
        with using_runner(runner):
            engine.run(steady(application="kmeans", num_phases=2), "IBL")
        assert runner.disk_cache.stores > 0
        assert runner.disk_cache.size_bytes() <= 1
