"""Stress tests for the cache's concurrent-writer safety contract.

``_JsonTier.store_payload`` commits entries with ``mkstemp`` + one atomic
``os.replace``, which is the entire synchronization story of the shared
cache: N worker processes may hammer the same keys and readers must never
observe a torn entry, no stale ``.tmp-`` files may leak from completed
writes, and per-process counters must stay consistent when folded back
through ``absorb_counters``.  The distributed experiment service leans on
exactly this (every worker publishes into one cache directory), so the
contract is exercised here with real processes, not threads.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import pytest

from repro.runner.cache import TEMP_PREFIX, ResultCache, _JsonTier

#: Shared keys every process hammers (two shard directories).
KEYS = [f"aa{index:02d}feed" for index in range(4)] + [
    f"bb{index:02d}feed" for index in range(4)
]

ROUNDS = 25


def _payload(key: str) -> dict:
    # Content-addressed semantics: every writer stores the same payload for
    # a given key, so any complete read must match this exactly.
    return {"key": key, "blob": "x" * 4096, "values": list(range(32))}


def _hammer(args):
    """Worker body: store+load every key repeatedly; report anomalies."""
    directory, rounds = args
    tier = _JsonTier(Path(directory))
    torn = 0
    for _ in range(rounds):
        for key in KEYS:
            tier.store_payload(key, _payload(key))
            loaded = tier.load_payload(key)
            # After this process's own store the entry exists; any complete
            # read is bit-exact because all writers write identical content.
            if loaded != _payload(key):
                torn += 1
    return {
        "torn": torn,
        "replay_hits": tier.hits,
        "replay_misses": tier.misses,
        "replay_stores": tier.stores,
    }


def _run_hammer_pool(directory, processes: int):
    try:
        with ProcessPoolExecutor(max_workers=processes) as pool:
            return list(
                pool.map(_hammer, [(str(directory), ROUNDS)] * processes)
            )
    except (OSError, PermissionError, NotImplementedError, ImportError) as error:
        pytest.skip(f"multiprocessing unavailable in this sandbox: {error}")


class TestConcurrentWriters:
    def test_no_torn_reads_no_tmp_leaks_consistent_counters(self, tmp_path):
        tier_dir = tmp_path / "measurements"
        reports = _run_hammer_pool(tier_dir, processes=4)

        # No process ever read a torn, partial or missing entry.
        assert [report["torn"] for report in reports] == [0, 0, 0, 0]
        assert [report["replay_misses"] for report in reports] == [0, 0, 0, 0]

        # Every committed write was renamed into place: no .tmp- leaks.
        leaks = list(tier_dir.rglob(f"{TEMP_PREFIX}*"))
        assert leaks == []

        # Exactly one entry per key survives, each one complete and exact.
        tier = _JsonTier(tier_dir)
        assert len(tier) == len(KEYS)
        for key in KEYS:
            assert tier.load_payload(key) == _payload(key)

        # Folding the per-process counters back through absorb_counters
        # yields the exact totals (the coordinator-side accounting path).
        cache = ResultCache(tmp_path)
        for report in reports:
            cache.absorb_counters(
                {name: value for name, value in report.items() if name != "torn"}
            )
        expected_each = len(KEYS) * ROUNDS
        assert cache.replay_stores == 4 * expected_each
        assert cache.replay_hits == 4 * expected_each
        assert cache.replay_misses == 0

    def test_interleaved_writers_in_one_process(self, tmp_path):
        # The single-process analogue (always runs, even where forking is
        # unavailable): two tier objects over one directory, interleaved.
        a = _JsonTier(tmp_path / "tier")
        b = _JsonTier(tmp_path / "tier")
        for _ in range(ROUNDS):
            for key in KEYS:
                a.store_payload(key, _payload(key))
                assert b.load_payload(key) == _payload(key)
                b.store_payload(key, _payload(key))
                assert a.load_payload(key) == _payload(key)
        assert list((tmp_path / "tier").rglob(f"{TEMP_PREFIX}*")) == []
        assert len(a) == len(KEYS)

    def test_crashed_writer_temp_is_invisible_and_prunable(self, tmp_path):
        # Simulate a writer that died mid-serialize: its .tmp- file must be
        # invisible to readers/entry listings and swept by prune once stale.
        import os
        import time

        cache = ResultCache(tmp_path)
        tier_dir = tmp_path / ResultCache.MEASUREMENTS_TIER / "aa"
        tier_dir.mkdir(parents=True)
        orphan = tier_dir / f"{TEMP_PREFIX}dead.json"
        orphan.write_text(json.dumps({"partial": True})[:-4])
        old = time.time() - 3600.0
        os.utime(orphan, (old, old))
        tier = _JsonTier(tmp_path / ResultCache.MEASUREMENTS_TIER)
        assert list(tier.entries()) == []
        cache.prune(tier=ResultCache.MEASUREMENTS_TIER)
        assert not orphan.exists()
