"""Key-sensitivity harness for the two-phase replay/score contract.

Every :class:`~repro.sim.simulator.SimulationConfig` field must be keyed by
exactly one cache tier: perturbing a :data:`REPLAY_FIELDS` entry must change
``replay_key`` (and therefore ``score_key``, which embeds it), while
perturbing a :data:`SCORE_FIELDS` entry must change **only** ``score_key``
— otherwise a field silently falls out of the content keys and stale cached
results get served for new configurations.

The harness is parametrized over *every* field in both lists via a
perturbation table; a new ``SimulationConfig`` field fails the suite until
it is added both to one of the lists (the import-time guard in
``repro.sim.simulator`` enforces that) and to :data:`PERTURBATIONS` here
(:func:`test_harness_covers_every_field` enforces this one).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import MorpheusConfig
from repro.gpu.config import RTX3080_CONFIG
from repro.runner.spec import RunSpec
from repro.sim.performance_model import ResourceEnvelope
from repro.sim.simulator import REPLAY_FIELDS, SCORE_FIELDS, SimulationConfig
from repro.workloads.applications import get_application

#: Baseline config the perturbations are applied to.  It carries a Morpheus
#: configuration and cache-mode SMs so Morpheus-only fields are perturbable.
BASELINE = SimulationConfig(
    gpu=RTX3080_CONFIG,
    morpheus=MorpheusConfig(),
    num_compute_sms=20,
    num_cache_sms=8,
    power_gate_unused=True,
    capacity_scale=1.0 / 64.0,
    trace_accesses=800,
    warmup_accesses=200,
    request_interval_cycles=2.0,
    peak_warp_ipc_per_sm=4.0,
    mlp_per_sm=320.0,
    system_name="test",
    seed=1,
)

#: One value-changing perturbation per config field.  Every field of
#: ``REPLAY_FIELDS + SCORE_FIELDS`` must have an entry — adding a config
#: field without extending this table fails ``test_harness_covers_every_field``.
PERTURBATIONS = {
    "gpu": lambda c: dataclasses.replace(c, gpu=c.gpu.with_num_sms(60)),
    "morpheus": lambda c: dataclasses.replace(
        c, morpheus=MorpheusConfig(enable_compression=True)
    ),
    "num_compute_sms": lambda c: dataclasses.replace(
        c, num_compute_sms=c.num_compute_sms + 1
    ),
    "num_cache_sms": lambda c: dataclasses.replace(
        c, num_cache_sms=c.num_cache_sms + 1
    ),
    "capacity_scale": lambda c: dataclasses.replace(
        c, capacity_scale=c.capacity_scale * 2.0
    ),
    "trace_accesses": lambda c: dataclasses.replace(
        c, trace_accesses=c.trace_accesses + 100
    ),
    "warmup_accesses": lambda c: dataclasses.replace(
        c, warmup_accesses=c.warmup_accesses + 100
    ),
    "request_interval_cycles": lambda c: dataclasses.replace(
        c, request_interval_cycles=c.request_interval_cycles + 1.0
    ),
    "replay_mode": lambda c: dataclasses.replace(c, replay_mode="analytic"),
    "seed": lambda c: dataclasses.replace(c, seed=c.seed + 1),
    "power_gate_unused": lambda c: dataclasses.replace(
        c, power_gate_unused=not c.power_gate_unused
    ),
    "peak_warp_ipc_per_sm": lambda c: dataclasses.replace(
        c, peak_warp_ipc_per_sm=c.peak_warp_ipc_per_sm + 1.0
    ),
    "mlp_per_sm": lambda c: dataclasses.replace(c, mlp_per_sm=c.mlp_per_sm + 16.0),
    "system_name": lambda c: dataclasses.replace(
        c, system_name=c.system_name + "-perturbed"
    ),
    "envelope": lambda c: dataclasses.replace(
        c, envelope=ResourceEnvelope(dram_bandwidth_share=0.5)
    ),
}


def _keys(config: SimulationConfig):
    run = RunSpec(get_application("kmeans"), config)
    return run.replay_key(), run.score_key()


def _perturbed(field: str) -> SimulationConfig:
    perturbed = PERTURBATIONS[field](BASELINE)
    # A perturbation that doesn't change the value would vacuously "pass".
    assert getattr(perturbed, field) != getattr(BASELINE, field), (
        f"perturbation for {field!r} left the value unchanged"
    )
    return perturbed


class TestFieldClassification:
    def test_every_config_field_is_classified_exactly_once(self):
        fields = {f.name for f in dataclasses.fields(SimulationConfig)}
        classified = set(REPLAY_FIELDS) | set(SCORE_FIELDS)
        assert fields == classified, (
            f"SimulationConfig fields out of sync with REPLAY_FIELDS/"
            f"SCORE_FIELDS: missing {sorted(fields - classified)}, "
            f"stale {sorted(classified - fields)}"
        )
        overlap = set(REPLAY_FIELDS) & set(SCORE_FIELDS)
        assert not overlap, f"fields classified in both tiers: {sorted(overlap)}"

    def test_harness_covers_every_field(self):
        # The guard the issue asks for: a new SimulationConfig field fails
        # this suite until a perturbation (and hence a key-sensitivity
        # check) exists for it.
        classified = set(REPLAY_FIELDS) | set(SCORE_FIELDS)
        assert set(PERTURBATIONS) == classified, (
            f"PERTURBATIONS out of sync: missing "
            f"{sorted(classified - set(PERTURBATIONS))}, "
            f"stale {sorted(set(PERTURBATIONS) - classified)}"
        )

    def test_params_expose_exactly_the_classified_fields(self):
        assert set(BASELINE.replay_params()) == set(REPLAY_FIELDS)
        assert set(BASELINE.score_params()) == set(SCORE_FIELDS)


class TestKeySensitivity:
    @pytest.mark.parametrize("field", REPLAY_FIELDS)
    def test_replay_field_changes_both_keys(self, field):
        base_replay, base_score = _keys(BASELINE)
        replay, score = _keys(_perturbed(field))
        assert replay != base_replay, (
            f"perturbing replay field {field!r} did not change replay_key — "
            "a stale cached measurement would be served for the new config"
        )
        assert score != base_score, (
            f"perturbing replay field {field!r} did not change score_key"
        )

    @pytest.mark.parametrize("field", SCORE_FIELDS)
    def test_score_field_changes_only_score_key(self, field):
        base_replay, base_score = _keys(BASELINE)
        replay, score = _keys(_perturbed(field))
        assert replay == base_replay, (
            f"perturbing score-only field {field!r} changed replay_key — "
            "analytic sweeps would needlessly re-replay traces"
        )
        assert score != base_score, (
            f"perturbing score-only field {field!r} did not change score_key — "
            "a stale cached result would be served for the new parameters"
        )

    def test_profile_and_energies_are_keyed(self):
        base_replay, base_score = _keys(BASELINE)
        other_profile = RunSpec(get_application("cfd"), BASELINE)
        assert other_profile.replay_key() != base_replay

        from repro.energy.components import ComponentEnergies

        other_energies = RunSpec(
            get_application("kmeans"),
            BASELINE,
            ComponentEnergies(dram_pj_per_byte=999.0),
        )
        assert other_energies.replay_key() == base_replay
        assert other_energies.score_key() != base_score


class TestTelemetryNeverEntersKeys:
    """No observability knob may reach a cache key (telemetry inertness)."""

    def test_telemetry_env_does_not_change_keys(self, monkeypatch):
        base = _keys(BASELINE)
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", "/tmp/somewhere-else")
        monkeypatch.setenv("REPRO_LOG_LEVEL", "DEBUG")
        assert _keys(BASELINE) == base

    def test_active_telemetry_does_not_change_keys(self, tmp_path):
        from repro.telemetry import Telemetry

        base = _keys(BASELINE)
        with Telemetry(directory=tmp_path, enabled=True):
            assert _keys(BASELINE) == base

    def test_no_telemetry_field_in_key_params(self):
        for params in (BASELINE.replay_params(), BASELINE.score_params()):
            flat = repr(params).lower()
            assert "telemetry" not in flat
            assert "trace_dir" not in flat
