"""Tests for the persistent worker pool behind ``ExperimentRunner._pool_map``.

One ``ProcessPoolExecutor`` serves every batch for the life of the runner
(worker startup is paid once, not per ``run_leaves``/``run_plan`` call); it
is torn down by ``close()``/garbage collection, recreated after a
``BrokenProcessPool``, and never created at all for serial runners — with a
serial fallback identical in results to pooled execution.
"""

from __future__ import annotations

import dataclasses
import os

import pytest

from repro.runner import ExperimentRunner
from runner_test_utils import tiny_config


def _square(value: int) -> int:
    return value * value


def _die(_value: int) -> int:  # pragma: no cover - runs in a worker it kills
    os._exit(1)


@pytest.fixture
def pooled_runner(tmp_path):
    runner = ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=2)
    if runner._ensure_pool() is None:
        pytest.skip("multiprocessing unavailable in this sandbox")
    yield runner
    runner.close()


class TestPersistentPool:
    def test_one_pool_serves_many_batches(self, pooled_runner):
        assert pooled_runner._pool_map(_square, [1, 2, 3], 2) == [1, 4, 9]
        pool = pooled_runner._pool
        assert pool is not None
        assert pooled_runner._pool_map(_square, [4, 5], 2) == [16, 25]
        assert pooled_runner._pool is pool  # reused, not respawned

    def test_close_tears_down_and_next_use_recreates(self, pooled_runner):
        pooled_runner._pool_map(_square, [1], 1)
        first = pooled_runner._pool
        pooled_runner.close()
        assert pooled_runner._pool is None
        assert pooled_runner._pool_map(_square, [2], 1) == [4]
        assert pooled_runner._pool is not None
        assert pooled_runner._pool is not first

    def test_close_is_idempotent(self, pooled_runner):
        pooled_runner._pool_map(_square, [1], 1)
        pooled_runner.close()
        pooled_runner.close()
        assert pooled_runner._pool is None

    def test_broken_pool_falls_back_serially_and_recovers(self, pooled_runner):
        with pytest.warns(RuntimeWarning, match="process pool unavailable"):
            assert pooled_runner._pool_map(_die, [1], 1) is None
        assert pooled_runner._pool is None  # torn down, not left broken
        # The next batch starts a fresh pool transparently.
        assert pooled_runner._pool_map(_square, [3], 1) == [9]

    def test_serial_runner_never_creates_a_pool(self, tmp_path, kmeans_profile):
        runner = ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=0)
        stats = runner.run_configs(kmeans_profile, [tiny_config(seed=s) for s in (1, 2)])
        assert len(stats) == 2
        assert runner._pool is None
        assert runner._ensure_pool() is None

    def test_pool_size_capped_by_cpu_count(self, tmp_path, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        runner = ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=8)
        try:
            pool = runner._ensure_pool()
            if pool is None:
                pytest.skip("multiprocessing unavailable in this sandbox")
            assert pool._max_workers == 1
        finally:
            runner.close()

    def test_pooled_batches_match_serial(self, tmp_path, kmeans_profile, monkeypatch):
        # On 1-CPU hosts _effective_workers degrades to serial; pretend we
        # have cores so the persistent pool actually carries both batches.
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        serial = ExperimentRunner(cache_dir=tmp_path / "serial", max_workers=0)
        pooled = ExperimentRunner(cache_dir=tmp_path / "pooled", max_workers=2)
        try:
            if pooled._ensure_pool() is None:
                pytest.skip("multiprocessing unavailable in this sandbox")
            pool = pooled._pool
            for seeds in ((1, 2), (3, 4)):
                configs = [tiny_config(seed=seed) for seed in seeds]
                expected = serial.run_configs(kmeans_profile, configs)
                actual = pooled.run_configs(kmeans_profile, configs)
                assert [dataclasses.asdict(s) for s in actual] == [
                    dataclasses.asdict(s) for s in expected
                ]
            assert pooled._pool is pool
            assert pooled.replays == serial.replays == 4
        finally:
            pooled.close()
