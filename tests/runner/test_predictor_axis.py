"""Tests for the declarative predictor axis on ExperimentSpec/ExperimentCell."""

from __future__ import annotations

import dataclasses

import pytest

from repro.runner import ExperimentRunner, ExperimentSpec, using_runner
from repro.systems.registry import evaluate_application, get_system
from runner_test_utils import TINY_FIDELITY


class TestSpecExpansion:
    def test_predictor_axis_fans_out_morpheus_systems_only(self):
        spec = ExperimentSpec(
            systems=("BL", "Morpheus-Basic"),
            applications=("kmeans",),
            predictors=("bloom", "none", "perfect"),
        )
        plan = spec.expand()
        by_system = {}
        for cell in plan.cells:
            by_system.setdefault(cell.system, []).append(cell.predictor)
        # Baselines have no predictor: one default cell.
        assert by_system["BL"] == [None]
        assert by_system["Morpheus-Basic"] == ["bloom", "none", "perfect"]

    def test_default_expansion_keeps_predictor_none(self):
        plan = ExperimentSpec(
            systems=("Morpheus-Basic",), applications=("kmeans",)
        ).expand()
        assert [cell.predictor for cell in plan.cells] == [None]

    def test_predictors_with_sm_counts_raises(self):
        with pytest.raises(ValueError, match="predictor axis"):
            ExperimentSpec(
                systems=("sweep",),
                applications=("kmeans",),
                sm_counts=(10, 20),
                predictors=("bloom",),
            )

    def test_empty_predictors_raises(self):
        with pytest.raises(ValueError, match="non-empty"):
            ExperimentSpec(
                systems=("Morpheus-Basic",),
                applications=("kmeans",),
                predictors=(),
            )

    def test_paren_named_system_with_predictors_raises(self):
        # "Morpheus-Basic(perfect)" already pins a predictor; combining it
        # with the axis would specify the predictor twice.
        with pytest.raises(ValueError, match="already names a predictor"):
            ExperimentSpec(
                systems=("Morpheus-Basic(perfect)",),
                applications=("kmeans",),
                predictors=("bloom",),
            )


class TestPredictorExecution:
    def test_declarative_sweep_matches_name_syntax(self, tmp_path):
        # The predictor axis must be equivalent to the hand-built
        # "Morpheus-Basic(<predictor>)" construction the Fig. 13 code used.
        spec = ExperimentSpec(
            systems=("Morpheus-Basic",),
            applications=("kmeans",),
            fidelity=TINY_FIDELITY,
            predictors=("bloom", "none"),
        )
        runner = ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=0)
        with using_runner(runner):
            result = runner.run_plan(spec)
            by_name = evaluate_application(
                "Morpheus-Basic(none)", "kmeans", fidelity=TINY_FIDELITY
            )
        declarative = result.get("Morpheus-Basic", "kmeans", predictor="none")
        assert dataclasses.asdict(declarative) == dataclasses.asdict(by_name)
        # Different predictors genuinely produce different cells.
        bloom = result.get("Morpheus-Basic", "kmeans", predictor="bloom")
        assert bloom.system == "Morpheus-Basic"
        assert declarative.system == "Morpheus-Basic(none)"

    def test_result_get_requires_disambiguation(self, tmp_path):
        spec = ExperimentSpec(
            systems=("Morpheus-Basic",),
            applications=("kmeans",),
            fidelity=TINY_FIDELITY,
            predictors=("bloom", "none"),
        )
        runner = ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=0)
        with using_runner(runner):
            result = runner.run_plan(spec)
        with pytest.raises(KeyError, match="ambiguous"):
            result.get("Morpheus-Basic", "kmeans")

    def test_get_system_predictor_override(self):
        system = get_system("Morpheus-ALL", predictor="perfect")
        assert system.predictor == "perfect"
        assert system.name == "Morpheus-ALL(perfect)"
        with pytest.raises(ValueError, match="predictor"):
            get_system("BL", predictor="bloom")
