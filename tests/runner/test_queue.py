"""Tests for the job-queue protocol behind the distributed experiment service.

Both shipped backends (:class:`InProcessQueue`, :class:`FileQueue`) must
satisfy the same contract — submit idempotency per job id, atomic exclusive
claims, heartbeat-gated lease expiry, exactly-once requeue of crashed
workers, done-record precedence over a stale lease, and ``forget`` for
re-registering work whose cached result was pruned.  The protocol tests are
parameterized over both so a future Redis/HTTP backend can join the same
matrix unchanged.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.runner.queue import (
    DONE,
    LEASED,
    PENDING,
    FileQueue,
    InProcessQueue,
    Job,
)


@pytest.fixture(params=["in-process", "file"])
def queue(request, tmp_path):
    if request.param == "in-process":
        return InProcessQueue()
    return FileQueue(tmp_path / "queue")


def job(job_id: str = "replay-abc123", kind: str = "replay") -> Job:
    return Job(job_id=job_id, kind=kind, payload={"replay_key": "abc123"})


class TestSubmitIdempotency:
    def test_first_submit_registers(self, queue):
        assert queue.submit(job()) is True
        status = queue.status("replay-abc123")
        assert status is not None and status.state == PENDING
        assert status.attempts == 0

    def test_resubmit_is_noop(self, queue):
        queue.submit(job())
        assert queue.submit(job()) is False
        assert queue.counts()[PENDING] == 1

    def test_resubmit_while_leased_is_noop(self, queue):
        queue.submit(job())
        assert queue.claim("w1") is not None
        assert queue.submit(job()) is False
        assert queue.counts() == {PENDING: 0, LEASED: 1, DONE: 0}

    def test_resubmit_after_done_is_noop(self, queue):
        queue.submit(job())
        claimed = queue.claim("w1")
        queue.complete(claimed.job_id, "w1", {"ok": True})
        assert queue.submit(job()) is False
        assert queue.counts()[DONE] == 1

    def test_unknown_job_has_no_status(self, queue):
        assert queue.status("replay-unknown") is None


class TestClaim:
    def test_claim_returns_the_job_payload(self, queue):
        queue.submit(job())
        claimed = queue.claim("w1")
        assert claimed == job()

    def test_claim_is_exclusive(self, queue):
        queue.submit(job())
        assert queue.claim("w1") is not None
        assert queue.claim("w2") is None

    def test_each_job_claimed_once_across_workers(self, queue):
        ids = [f"replay-{index:02d}" for index in range(8)]
        for job_id in ids:
            queue.submit(job(job_id))
        claims = {}
        for worker in ("w1", "w2", "w3"):
            while True:
                claimed = queue.claim(worker)
                if claimed is None:
                    break
                assert claimed.job_id not in claims, "double claim"
                claims[claimed.job_id] = worker
        assert sorted(claims) == ids

    def test_claimed_job_is_leased_to_its_worker(self, queue):
        queue.submit(job())
        queue.claim("w1")
        status = queue.status("replay-abc123")
        assert status.state == LEASED
        assert status.worker == "w1"

    def test_claim_empty_queue(self, queue):
        assert queue.claim("w1") is None


class TestHeartbeatAndComplete:
    def test_heartbeat_held_lease(self, queue):
        queue.submit(job())
        queue.claim("w1")
        assert queue.heartbeat("replay-abc123", "w1") is True

    def test_heartbeat_wrong_worker_rejected(self, queue):
        queue.submit(job())
        queue.claim("w1")
        assert queue.heartbeat("replay-abc123", "w2") is False

    def test_heartbeat_unclaimed_rejected(self, queue):
        queue.submit(job())
        assert queue.heartbeat("replay-abc123", "w1") is False

    def test_complete_records_result(self, queue):
        queue.submit(job())
        queue.claim("w1")
        queue.complete("replay-abc123", "w1", {"ok": True, "replays": 1})
        status = queue.status("replay-abc123")
        assert status.state == DONE
        assert status.worker == "w1"
        assert status.result == {"ok": True, "replays": 1}
        assert queue.result("replay-abc123") == {"ok": True, "replays": 1}
        assert queue.counts() == {PENDING: 0, LEASED: 0, DONE: 1}

    def test_result_of_unfinished_job_is_none(self, queue):
        queue.submit(job())
        assert queue.result("replay-abc123") is None


class TestRequeueExpired:
    def test_live_lease_not_requeued(self, queue):
        queue.submit(job())
        queue.claim("w1", lease_seconds=60.0)
        assert queue.requeue_expired() == []

    def test_expired_lease_requeued_exactly_once(self, queue):
        queue.submit(job())
        queue.claim("w1", lease_seconds=0.0)
        time.sleep(0.05)
        assert queue.requeue_expired() == ["replay-abc123"]
        assert queue.requeue_expired() == []
        status = queue.status("replay-abc123")
        assert status.state == PENDING
        assert status.attempts == 1

    def test_requeued_job_claimable_by_another_worker(self, queue):
        queue.submit(job())
        queue.claim("w1", lease_seconds=0.0)
        time.sleep(0.05)
        queue.requeue_expired()
        claimed = queue.claim("w2")
        assert claimed == job()
        assert queue.status("replay-abc123").attempts == 1

    def test_heartbeat_defers_expiry(self, queue):
        queue.submit(job())
        queue.claim("w1", lease_seconds=0.2)
        time.sleep(0.15)
        assert queue.heartbeat("replay-abc123", "w1") is True
        assert queue.requeue_expired() == []


class TestForget:
    def test_forget_done_job_allows_resubmit(self, queue):
        queue.submit(job())
        queue.claim("w1")
        queue.complete("replay-abc123", "w1", {"ok": True})
        assert queue.forget("replay-abc123") is True
        assert queue.status("replay-abc123") is None
        assert queue.submit(job()) is True

    def test_forget_unknown_job(self, queue):
        assert queue.forget("replay-unknown") is False

    def test_forget_leaves_pending_jobs_alone(self, queue):
        queue.submit(job())
        assert queue.forget("replay-abc123") is False
        assert queue.status("replay-abc123").state == PENDING


class TestFileQueueCrashSemantics:
    """FileQueue-specific guarantees the crash/resume story rests on."""

    def test_done_record_published_before_lease_dropped(self, tmp_path):
        # complete() must never leave a window where the job is in neither
        # state; the done file exists before the lease is unlinked, so a
        # crash in between leaves a stale lease the sweeper discards.
        queue = FileQueue(tmp_path / "queue")
        queue.submit(job())
        queue.claim("w1", lease_seconds=0.0)
        queue.complete("replay-abc123", "w1", {"ok": True})
        # Simulate the crash window: restore the stale lease alongside done.
        stale = queue._leased_path("replay-abc123")
        stale.write_text(json.dumps({"job": job().to_jsonable(), "worker": "w1"}))
        old = time.time() - 3600.0
        os.utime(stale, (old, old))
        assert queue.requeue_expired() == []  # done record wins, no retry
        assert not stale.exists()
        assert queue.status("replay-abc123").state == DONE

    def test_claim_refreshes_heartbeat_of_old_pending_file(self, tmp_path):
        # The pending->leased rename preserves mtime; claim must touch the
        # lease or a long-pending job would look instantly expired.
        queue = FileQueue(tmp_path / "queue")
        queue.submit(job())
        pending = queue._pending_path("replay-abc123")
        old = time.time() - 3600.0
        os.utime(pending, (old, old))
        queue.claim("w1", lease_seconds=60.0)
        assert queue.requeue_expired() == []

    def test_unreadable_pending_record_surfaces_as_error(self, tmp_path):
        queue = FileQueue(tmp_path / "queue")
        queue.submit(job())
        queue._pending_path("replay-abc123").write_text("{not json")
        assert queue.claim("w1") is None
        status = queue.status("replay-abc123")
        assert status.state == DONE
        assert status.result.get("error")

    def test_two_queue_objects_share_one_directory(self, tmp_path):
        # The whole point of the filesystem backend: independent processes
        # (here: two queue instances) coordinate purely through the files.
        a = FileQueue(tmp_path / "queue")
        b = FileQueue(tmp_path / "queue")
        a.submit(job())
        claimed = b.claim("w-b")
        assert claimed == job()
        b.complete(claimed.job_id, "w-b", {"ok": True})
        assert a.status("replay-abc123").state == DONE
        assert a.counts()[DONE] == 1
