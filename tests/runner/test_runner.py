"""Tests for the ExperimentRunner subsystem.

Covers the on-disk result cache (hit / miss / invalidation on config or
schema change), serial-vs-parallel bit-identical execution, plan expansion,
the shared trace cache and the pure performance model.
"""

from __future__ import annotations

import dataclasses

import pytest

import repro.runner.spec as spec_module
from repro.runner import (
    ExperimentRunner,
    ExperimentSpec,
    RunSpec,
    using_runner,
)
from repro.runner.cache import ResultCache, stats_from_jsonable, stats_to_jsonable
from repro.sim.performance_model import PerformanceModel
from repro.sim.simulator import GPUSimulator
from repro.workloads.generator import TraceCache
from runner_test_utils import TINY_FIDELITY, tiny_config


@pytest.fixture
def runner(tmp_path) -> ExperimentRunner:
    return ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=0)


class TestContentKeys:
    def test_key_is_stable(self, kmeans_profile):
        spec = RunSpec(kmeans_profile, tiny_config())
        assert spec.content_key() == spec.content_key()
        assert spec.content_key() == RunSpec(kmeans_profile, tiny_config()).content_key()

    def test_key_changes_with_any_config_field(self, kmeans_profile):
        base = RunSpec(kmeans_profile, tiny_config()).content_key()
        assert RunSpec(kmeans_profile, tiny_config(seed=2)).content_key() != base
        assert RunSpec(kmeans_profile, tiny_config(num_compute_sms=24)).content_key() != base
        assert (
            RunSpec(kmeans_profile, tiny_config(request_interval_cycles=3.0)).content_key()
            != base
        )

    def test_key_changes_with_profile(self, kmeans_profile, cfd_profile):
        config = tiny_config()
        assert (
            RunSpec(kmeans_profile, config).content_key()
            != RunSpec(cfd_profile, config).content_key()
        )

    def test_key_changes_with_replay_schema_version(self, kmeans_profile, monkeypatch):
        run = RunSpec(kmeans_profile, tiny_config())
        base_replay = run.replay_key()
        base_score = run.score_key()
        monkeypatch.setattr(spec_module, "REPLAY_SCHEMA_VERSION", 999)
        fresh = RunSpec(kmeans_profile, tiny_config())
        # A replay-schema bump invalidates both tiers (score keys embed it).
        assert fresh.replay_key() != base_replay
        assert fresh.score_key() != base_score

    def test_key_changes_with_score_schema_version(self, kmeans_profile, monkeypatch):
        run = RunSpec(kmeans_profile, tiny_config())
        base_replay = run.replay_key()
        base_score = run.score_key()
        monkeypatch.setattr(spec_module, "SCORE_SCHEMA_VERSION", 999)
        fresh = RunSpec(kmeans_profile, tiny_config())
        # A score-schema bump keeps cached measurements valid.
        assert fresh.replay_key() == base_replay
        assert fresh.score_key() != base_score

    def test_analytic_params_share_replay_key(self, kmeans_profile):
        base = RunSpec(kmeans_profile, tiny_config())
        variant = RunSpec(kmeans_profile, tiny_config(mlp_per_sm=10.0))
        assert variant.replay_key() == base.replay_key()
        assert variant.score_key() != base.score_key()


class TestResultCache:
    def test_round_trip_preserves_stats_exactly(self, tmp_path, kmeans_profile):
        stats = GPUSimulator(tiny_config()).run(kmeans_profile)
        cache = ResultCache(tmp_path)
        cache.store("deadbeef", stats)
        loaded = cache.load("deadbeef")
        assert dataclasses.asdict(loaded) == dataclasses.asdict(stats)

    def test_load_missing_key_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.load("0" * 64) is None
        assert cache.misses == 1

    def test_corrupt_entry_is_miss(self, tmp_path, kmeans_profile):
        stats = GPUSimulator(tiny_config()).run(kmeans_profile)
        cache = ResultCache(tmp_path)
        cache.store("deadbeef", stats)
        cache.path_for("deadbeef").write_text("{not json")
        assert cache.load("deadbeef") is None

    def test_infinity_limits_survive_json(self, kmeans_profile):
        stats = GPUSimulator(tiny_config()).run(kmeans_profile)
        stats.limits["unbounded"] = float("inf")
        restored = stats_from_jsonable(stats_to_jsonable(stats))
        assert restored.limits["unbounded"] == float("inf")


class TestRunnerCaching:
    def test_second_simulate_hits_cache(self, runner, kmeans_profile):
        config = tiny_config()
        first = runner.simulate(kmeans_profile, config)
        assert runner.disk_cache.stores == 1
        second = runner.simulate(kmeans_profile, config)
        assert second is first  # served from the in-process layer
        assert runner.memory_hits == 1

    def test_fresh_runner_reads_disk_cache(self, tmp_path, kmeans_profile):
        config = tiny_config()
        first_runner = ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=0)
        first = first_runner.simulate(kmeans_profile, config)
        second_runner = ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=0)
        second = second_runner.simulate(kmeans_profile, config)
        assert second_runner.disk_cache.hits == 1
        assert dataclasses.asdict(first) == dataclasses.asdict(second)

    def test_config_change_invalidates(self, runner, kmeans_profile):
        runner.simulate(kmeans_profile, tiny_config())
        runner.simulate(kmeans_profile, tiny_config(request_interval_cycles=4.0))
        assert runner.disk_cache.stores == 2

    def test_cache_bypass_recomputes(self, runner, kmeans_profile):
        config = tiny_config()
        runner.simulate(kmeans_profile, config)
        with runner.cache_bypassed():
            runner.simulate(kmeans_profile, config)
        assert runner.disk_cache.stores == 2
        assert runner.memory_hits == 0

    def test_disk_cache_can_be_disabled(self, tmp_path, kmeans_profile):
        runner = ExperimentRunner(
            cache_dir=tmp_path / "cache", max_workers=0, use_disk_cache=False
        )
        runner.simulate(kmeans_profile, tiny_config())
        assert len(runner.disk_cache) == 0


class TestSerialParallelParity:
    def test_run_configs_parallel_matches_serial(self, tmp_path, kmeans_profile):
        configs = [tiny_config(num_compute_sms=count) for count in (10, 20, 34, 50)]
        serial = ExperimentRunner(
            cache_dir=tmp_path / "serial", max_workers=0
        ).run_configs(kmeans_profile, configs)
        parallel = ExperimentRunner(
            cache_dir=tmp_path / "parallel", max_workers=2
        ).run_configs(kmeans_profile, configs)
        assert [dataclasses.asdict(s) for s in serial] == [
            dataclasses.asdict(s) for s in parallel
        ]

    def test_run_plan_parallel_matches_serial(self, tmp_path):
        spec = ExperimentSpec(
            systems=("BL", "Morpheus-Basic"),
            applications=("kmeans", "cfd"),
            fidelity=TINY_FIDELITY,
        )
        serial_runner = ExperimentRunner(cache_dir=tmp_path / "serial", max_workers=0)
        with using_runner(serial_runner):
            serial = serial_runner.run_plan(spec)
        parallel_runner = ExperimentRunner(cache_dir=tmp_path / "parallel", max_workers=2)
        with using_runner(parallel_runner):
            parallel = parallel_runner.run_plan(spec)
        assert set(serial.results) == set(parallel.results)
        for cell, stats in serial:
            assert dataclasses.asdict(stats) == dataclasses.asdict(
                parallel.results[cell]
            ), cell

    def test_warm_plan_rerun_is_pure_cache(self, tmp_path):
        spec = ExperimentSpec(
            systems=("BL",), applications=("kmeans",), fidelity=TINY_FIDELITY
        )
        cold_runner = ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=0)
        with using_runner(cold_runner):
            cold = cold_runner.run_plan(spec)
        warm_runner = ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=0)
        with using_runner(warm_runner):
            warm = warm_runner.run_plan(spec)
        assert warm_runner.disk_cache.stores == 0
        assert warm_runner.disk_cache.hits >= 1
        for cell, stats in cold:
            assert dataclasses.asdict(stats) == dataclasses.asdict(warm.results[cell])


class TestRunnerIsolation:
    def test_non_active_runner_plan_uses_own_cache(self, tmp_path, monkeypatch):
        # Named-system cells must route through *this* runner even when it is
        # not installed as the process-wide one.
        monkeypatch.chdir(tmp_path)
        runner = ExperimentRunner(cache_dir=tmp_path / "own", max_workers=0)
        runner.run_plan(
            ExperimentSpec(
                systems=("IBL",), applications=("kmeans",), fidelity=TINY_FIDELITY
            )
        )
        assert len(runner.disk_cache) > 0
        assert not (tmp_path / ".repro_cache").exists()

    def test_custom_energy_model_gets_its_own_cache_entries(self, tmp_path, kmeans_profile):
        from repro.energy.components import ComponentEnergies
        from repro.energy.model import EnergyModel

        config = tiny_config()
        default = ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=0)
        custom = ExperimentRunner(
            cache_dir=tmp_path / "cache",
            max_workers=0,
            energy_model=EnergyModel(ComponentEnergies(dram_pj_per_byte=999.0)),
        )
        base = default.simulate(kmeans_profile, config)
        scored = custom.simulate(kmeans_profile, config)
        assert custom.disk_cache.hits == 0  # different key, not served base's entry
        assert scored.energy.dram_j != base.energy.dram_j

    def test_parallel_workers_use_custom_energy_model(self, tmp_path, kmeans_profile):
        from repro.energy.components import ComponentEnergies
        from repro.energy.model import EnergyModel

        model = EnergyModel(ComponentEnergies(dram_pj_per_byte=999.0))
        configs = [tiny_config(num_compute_sms=count) for count in (10, 20)]
        serial = ExperimentRunner(
            cache_dir=tmp_path / "serial", max_workers=0, energy_model=model
        ).run_configs(kmeans_profile, configs)
        parallel = ExperimentRunner(
            cache_dir=tmp_path / "parallel", max_workers=2, energy_model=model
        ).run_configs(kmeans_profile, configs)
        assert [dataclasses.asdict(s) for s in serial] == [
            dataclasses.asdict(s) for s in parallel
        ]

    def test_by_application_rejects_ambiguous_plans(self, tmp_path):
        spec = ExperimentSpec(
            systems=("BL",),
            applications=("kmeans",),
            fidelity=TINY_FIDELITY,
            seeds=(1, 2),
        )
        runner = ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=0)
        with using_runner(runner):
            result = runner.run_plan(spec)
        with pytest.raises(KeyError):
            result.by_application("kmeans")
        assert result.get("BL", "kmeans", seed=2).application == "kmeans"


class TestPlanExpansion:
    def test_matrix_size(self):
        spec = ExperimentSpec(
            systems=("BL", "IBL"),
            applications=("kmeans", "cfd", "spmv"),
            seeds=(1, 2),
        )
        assert len(spec.expand()) == 12

    def test_sm_count_cells_skip_oversized(self):
        spec = ExperimentSpec(
            systems=("sweep",),
            applications=("kmeans",),
            sm_counts=(10, 68, 96),
        )
        plan = spec.expand()
        assert [cell.sm_count for cell in plan] == [10, 68]

    def test_plan_key_stable_and_sensitive(self):
        spec = ExperimentSpec(systems=("BL",), applications=("kmeans",))
        assert spec.expand().content_key() == spec.expand().content_key()
        other = ExperimentSpec(systems=("IBL",), applications=("kmeans",))
        assert spec.expand().content_key() != other.expand().content_key()

    def test_sm_count_plan_runs_direct_configs(self, tmp_path):
        spec = ExperimentSpec(
            systems=("sweep",),
            applications=("kmeans",),
            fidelity=TINY_FIDELITY,
            sm_counts=(10, 20),
        )
        runner = ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=0)
        with using_runner(runner):
            result = runner.run_plan(spec)
        stats = result.get("sweep", "kmeans", sm_count=10)
        assert stats.num_compute_sms == 10


class TestTraceCache:
    def test_same_inputs_reuse_trace(self, kmeans_profile):
        cache = TraceCache()
        first = cache.traces(kmeans_profile, 20, 1 / 64, 1, 200, 800)
        second = cache.traces(kmeans_profile, 20, 1 / 64, 1, 200, 800)
        assert second[0] is first[0] and second[1] is first[1]
        assert cache.hits == 1 and cache.misses == 1

    def test_different_seed_regenerates(self, kmeans_profile):
        cache = TraceCache()
        cache.traces(kmeans_profile, 20, 1 / 64, 1, 200, 800)
        cache.traces(kmeans_profile, 20, 1 / 64, 2, 200, 800)
        assert cache.misses == 2

    def test_lru_bound(self, kmeans_profile):
        cache = TraceCache(max_entries=2)
        for seed in (1, 2, 3):
            cache.traces(kmeans_profile, 20, 1 / 64, seed, 0, 100)
        cache.traces(kmeans_profile, 20, 1 / 64, 1, 0, 100)  # evicted -> miss
        assert cache.misses == 4


class TestPerformanceModel:
    def test_rescoring_is_pure(self, kmeans_profile):
        config = tiny_config()
        simulator = GPUSimulator(config)
        measurement = simulator.replay(kmeans_profile)
        model = PerformanceModel()
        first = model.score(kmeans_profile, config, measurement)
        second = model.score(kmeans_profile, config, measurement)
        assert dataclasses.asdict(first) == dataclasses.asdict(second)

    def test_rescoring_under_different_parameters(self, kmeans_profile):
        config = tiny_config()
        measurement = GPUSimulator(config).replay(kmeans_profile)
        model = PerformanceModel()
        base = model.score(kmeans_profile, config, measurement)
        rescored = model.score(
            kmeans_profile,
            dataclasses.replace(config, mlp_per_sm=10.0),
            measurement,
        )
        assert rescored.limits["latency"] < base.limits["latency"]

    def test_run_equals_replay_plus_score(self, kmeans_profile):
        config = tiny_config()
        via_run = GPUSimulator(config).run(kmeans_profile)
        simulator = GPUSimulator(config)
        via_parts = simulator.performance_model.score(
            kmeans_profile, config, simulator.replay(kmeans_profile)
        )
        assert dataclasses.asdict(via_run) == dataclasses.asdict(via_parts)


class TestDeterminism:
    def test_traces_stable_across_processes(self, kmeans_profile):
        # The RNG seed must not depend on PYTHONHASHSEED; two generators in
        # this process are a (weaker) proxy, the strong check being that the
        # parallel-worker tests above compare against in-process results.
        from repro.workloads.generator import TraceGenerator, _stable_seed

        assert _stable_seed(1, "kmeans", 20) == _stable_seed(1, "kmeans", 20)
        first = TraceGenerator(kmeans_profile, 20, scale=1 / 64, seed=1).generate(500)
        second = TraceGenerator(kmeans_profile, 20, scale=1 / 64, seed=1).generate(500)
        assert [e.address for e in first] == [e.address for e in second]
