"""Tests for the distributed experiment service.

The acceptance properties of the service backend:

* a cold batch/plan through ``REPRO_RUNNER_BACKEND=service`` is
  **bit-identical** to a serial run (results travel through the shared
  cache, never the queue),
* **zero duplicate replays** — measurement-tier stores equal the number of
  distinct replay keys, however many workers run,
* a **killed worker's** job is requeued exactly once and the resumed run
  still matches the serial result with no duplicate stores,
* a killed-and-restarted coordinator **resumes from the cache** without
  re-replaying completed leaves,
* per-task accounting (worker, attempts, runtime, counters) folds back
  into the requesting runner.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.energy.components import DEFAULT_ENERGIES, ComponentEnergies
from repro.runner import ExperimentRunner, ExperimentSpec, RunSpec, using_runner
from repro.runner import codec
from repro.runner.queue import DONE, FileQueue, InProcessQueue
from repro.runner.service import (
    CELL_JOB,
    REPLAY_JOB,
    DistributedBackend,
    ExperimentService,
    cell_job,
    execute_job,
    replay_job,
    worker_loop,
)
from repro.sim.simulator import SimulationConfig
from repro.workloads.applications import get_application
from runner_test_utils import TINY_FIDELITY, tiny_config


def _stats_dicts(stats_list):
    return [dataclasses.asdict(stats) for stats in stats_list]


def _measurement_files(cache_dir) -> int:
    tier = Path(cache_dir) / "measurements"
    if not tier.exists():
        return 0
    return sum(1 for _ in tier.rglob("*.json"))


def inline_service_runner(cache_dir, max_workers: int = 2) -> ExperimentRunner:
    """A service-backend runner draining an in-process queue inline.

    Exercises the full register/claim/lease/complete protocol without
    forking, so most tests stay fast and sandbox-proof; the spawned-daemon
    path is covered separately.
    """
    runner = ExperimentRunner(
        cache_dir=cache_dir, max_workers=max_workers, backend="service"
    )
    service = ExperimentService(
        cache_dir=runner.cache_dir,
        queue=InProcessQueue(),
        spawn_workers=False,
        num_workers=max_workers,
    )
    runner._service = DistributedBackend(service)
    return runner


class TestCodecRoundTrip:
    def test_profile_and_config_round_trip_exactly(self, kmeans_profile):
        config = tiny_config()
        profile2 = codec.decode(type(kmeans_profile), codec.encode(kmeans_profile))
        config2 = codec.decode(SimulationConfig, codec.encode(config))
        assert profile2 == kmeans_profile
        assert config2 == config

    def test_round_trip_preserves_replay_and_score_keys(self, kmeans_profile):
        # The at-most-once dedup hinges on this: a job payload that decoded
        # to different keys would replay the same leaf twice.
        config = tiny_config(morpheus=None)
        original = RunSpec(kmeans_profile, config, DEFAULT_ENERGIES)
        restored = RunSpec(
            codec.decode(type(kmeans_profile), codec.encode(kmeans_profile)),
            codec.decode(SimulationConfig, codec.encode(config)),
            codec.decode(ComponentEnergies, codec.encode(DEFAULT_ENERGIES)),
        )
        assert restored.replay_key() == original.replay_key()
        assert restored.score_key() == original.score_key()

    def test_json_wire_round_trip(self, kmeans_profile):
        # The payload actually crosses a JSON boundary in the FileQueue.
        config = tiny_config(mlp_per_sm=3.5)
        wire = json.loads(json.dumps(codec.encode(config)))
        assert codec.decode(SimulationConfig, wire) == config

    def test_morpheus_config_round_trips(self):
        from repro.core.config import MorpheusConfig

        config = tiny_config(
            morpheus=MorpheusConfig(enable_compression=True), num_cache_sms=4
        )
        wire = json.loads(json.dumps(codec.encode(config)))
        assert codec.decode(SimulationConfig, wire) == config

    def test_decode_rejects_non_dataclass(self):
        with pytest.raises(TypeError):
            codec.decode(int, 3)


class TestJobConstruction:
    def test_replay_job_id_is_replay_key(self, kmeans_profile):
        config = tiny_config()
        key = RunSpec(kmeans_profile, config, DEFAULT_ENERGIES).replay_key()
        job = replay_job(kmeans_profile, config, key)
        assert job.job_id == f"{REPLAY_JOB}-{key}"
        assert job.kind == REPLAY_JOB

    def test_cell_job_id_is_content_addressed(self):
        spec = ExperimentSpec(
            systems=("BL",), applications=("spmv",), fidelity=TINY_FIDELITY
        )
        plan = spec.expand()
        first = cell_job(plan.cells[0], spec, None)
        again = cell_job(plan.cells[0], spec, None)
        other = cell_job(plan.cells[0], spec, DEFAULT_ENERGIES)
        assert first.job_id == again.job_id
        assert first.job_id != other.job_id
        assert first.kind == CELL_JOB

    def test_execute_job_rejects_unknown_kind(self, tmp_path):
        from repro.runner.queue import Job

        with pytest.raises(ValueError):
            execute_job(Job(job_id="x", kind="mystery"), str(tmp_path))


class TestServiceBitIdentity:
    def test_cold_batch_matches_serial(self, tmp_path, kmeans_profile):
        configs = [tiny_config(seed=seed) for seed in (1, 2, 3)]
        serial = ExperimentRunner(cache_dir=tmp_path / "serial", max_workers=0)
        service = inline_service_runner(tmp_path / "service")
        expected = serial.run_configs(kmeans_profile, configs)
        actual = service.run_configs(kmeans_profile, configs)
        assert _stats_dicts(actual) == _stats_dicts(expected)
        assert service.replays == serial.replays == 3

    def test_zero_duplicate_replays(self, tmp_path, kmeans_profile):
        # Distinct replay keys == measurement files == replay-tier stores:
        # nothing was replayed twice, nothing stored twice.
        configs = [tiny_config(seed=seed) for seed in (1, 2)]
        configs += [tiny_config(seed=1, mlp_per_sm=9.0)]  # same replay key as seed=1
        service = inline_service_runner(tmp_path / "cache")
        service.run_configs(kmeans_profile, configs)
        distinct = {
            RunSpec(kmeans_profile, config, DEFAULT_ENERGIES).replay_key()
            for config in configs
        }
        assert len(distinct) == 2
        assert service.replays == 2
        assert _measurement_files(service.cache_dir) == len(distinct)
        assert service.disk_cache.replay_stores == len(distinct)

    def test_cold_plan_matches_serial(self, tmp_path):
        spec = ExperimentSpec(
            systems=("BL", "Morpheus-Basic"),
            applications=("spmv",),
            fidelity=TINY_FIDELITY,
        )
        serial = ExperimentRunner(cache_dir=tmp_path / "serial", max_workers=0)
        service = inline_service_runner(tmp_path / "service")
        expected = serial.run_plan(spec)
        actual = service.run_plan(spec)
        for (cell_a, stats_a), (cell_b, stats_b) in zip(expected, actual):
            assert cell_a == cell_b
            assert dataclasses.asdict(stats_a) == dataclasses.asdict(stats_b)
        assert service.replays == serial.replays

    def test_warm_rerun_costs_zero(self, tmp_path, kmeans_profile):
        configs = [tiny_config(seed=seed) for seed in (1, 2)]
        service = inline_service_runner(tmp_path / "cache")
        cold = service.run_configs(kmeans_profile, configs)
        warm = service.run_configs(kmeans_profile, configs)
        assert _stats_dicts(warm) == _stats_dicts(cold)
        assert service.replays == 2  # unchanged by the warm pass

    def test_restarted_coordinator_resumes_from_cache(self, tmp_path, kmeans_profile):
        # "Kill" the coordinator after a cold run (drop the runner), start a
        # fresh one on the same cache: nothing is re-replayed, results match.
        configs = [tiny_config(seed=seed) for seed in (1, 2)]
        first = inline_service_runner(tmp_path / "cache")
        cold = first.run_configs(kmeans_profile, configs)
        first.close()
        second = inline_service_runner(tmp_path / "cache")
        resumed = second.run_configs(kmeans_profile, configs)
        assert _stats_dicts(resumed) == _stats_dicts(cold)
        assert second.replays == 0
        assert _measurement_files(second.cache_dir) == 2

    def test_scenario_engine_through_service_backend(self, tmp_path):
        # Scenario timelines lower to run_leaves batches, which route
        # through the backend automatically — same snapshot either way.
        from repro.scenarios import ScenarioEngine, corun_pair

        scenario = corun_pair(rounds=2)

        def run(runner):
            engine = ScenarioEngine(runner=runner, fidelity=TINY_FIDELITY)
            with using_runner(runner):
                result = engine.run(scenario, "Morpheus-Basic")
            return [
                (execution.index, dataclasses.asdict(execution.stats))
                for execution in result.phases
            ]

        serial = ExperimentRunner(cache_dir=tmp_path / "serial", max_workers=0)
        service = inline_service_runner(tmp_path / "service")
        assert run(service) == run(serial)
        assert service.replays == serial.replays == 2


class TestServiceAccounting:
    def test_report_records_worker_attempts_runtime(self, tmp_path, kmeans_profile):
        service = inline_service_runner(tmp_path / "cache")
        service.run_configs(kmeans_profile, [tiny_config()])
        (report,) = service.service_reports
        (outcome,) = report.outcomes.values()
        assert outcome.kind == REPLAY_JOB
        assert outcome.ok and outcome.fresh
        assert outcome.attempts == 0
        assert outcome.worker is not None
        assert outcome.runtime_seconds > 0.0
        assert outcome.replays == 1
        assert outcome.counters.get("replay_stores") == 1
        assert report.replays == 1
        assert report.total_runtime_seconds > 0.0
        assert report.workers == [outcome.worker]

    def test_stale_outcomes_do_not_double_count(self, tmp_path):
        # run_plan registers its cell jobs every time; on a warm re-run the
        # done records predate the batch, so their recorded replays must not
        # fold into the runner's accounting a second time.
        spec = ExperimentSpec(
            systems=("BL",), applications=("spmv",), fidelity=TINY_FIDELITY
        )
        service = inline_service_runner(tmp_path / "cache")
        service.run_plan(spec)
        cold_replays = service.replays
        assert cold_replays > 0
        service.run_plan(spec)
        assert service.replays == cold_replays
        warm_report = service.service_reports[-1]
        assert warm_report.replays == 0
        assert all(not o.fresh for o in warm_report.outcomes.values())
        assert all(o.replays > 0 for o in warm_report.outcomes.values())

    def test_counters_fold_back_into_coordinator_cache(self, tmp_path, kmeans_profile):
        service = inline_service_runner(tmp_path / "cache")
        service.run_configs(kmeans_profile, [tiny_config()])
        # The inline executor ran on its own runner; its store shows up in
        # the coordinator's counters via absorb_counters.
        assert service.disk_cache.replay_stores == 1

    def test_failed_job_raises_with_details(self, tmp_path):
        from repro.runner.queue import Job

        service = ExperimentService(
            cache_dir=str(tmp_path / "cache"),
            queue=InProcessQueue(),
            spawn_workers=False,
        )
        with pytest.raises(RuntimeError, match="mystery"):
            service.run([Job(job_id="bad-1", kind="mystery")])

    def test_drain_times_out_with_queue_counts(self, tmp_path):
        service = ExperimentService(
            cache_dir=str(tmp_path / "cache"),
            queue=InProcessQueue(),
            spawn_workers=False,
            wait_timeout_seconds=0.05,
            poll_seconds=0.01,
        )
        with pytest.raises(RuntimeError, match="timed out"):
            service.drain(["never-submitted"])


class TestStaleDoneSelfHealing:
    def test_pruned_measurement_is_recomputed(self, tmp_path, kmeans_profile):
        # A done record whose measurement was pruned afterwards must not
        # shadow the work forever: the coordinator forgets it and re-runs.
        config = tiny_config()
        service = inline_service_runner(tmp_path / "cache")
        service.run_configs(kmeans_profile, [config])
        assert service.replays == 1
        # Prune every cached result, keep the queue's done record.
        service.disk_cache.prune(tier=service.disk_cache.MEASUREMENTS_TIER)
        service.disk_cache.prune(tier=service.disk_cache.STATS_TIER)
        service.clear_memory_cache()
        again = service.run_configs(kmeans_profile, [config])
        assert len(again) == 1
        assert service.replays == 2  # genuinely re-replayed
        assert _measurement_files(service.cache_dir) == 1


class TestWorkerLoop:
    def test_drain_and_exit_executes_pending_jobs(self, tmp_path, kmeans_profile):
        # worker_loop is the `python -m repro.runner serve` daemon body; run
        # it inline against a FileQueue so the CLI path is covered without
        # forking.
        config = tiny_config()
        key = RunSpec(kmeans_profile, config, DEFAULT_ENERGIES).replay_key()
        queue = FileQueue(tmp_path / "queue")
        queue.submit(replay_job(kmeans_profile, config, key))
        executed = worker_loop(
            queue,
            str(tmp_path / "cache"),
            worker_id="test-worker",
            drain_and_exit=True,
        )
        assert executed == 1
        status = queue.status(f"{REPLAY_JOB}-{key}")
        assert status.state == DONE
        assert status.worker == "test-worker"
        assert status.result["ok"] is True
        assert _measurement_files(tmp_path / "cache") == 1

    def test_stop_file_halts_the_loop(self, tmp_path):
        queue = FileQueue(tmp_path / "queue")
        stop = tmp_path / "queue" / "stop"
        stop.write_text("stop\n")
        executed = worker_loop(
            queue, str(tmp_path / "cache"), stop_file=str(stop)
        )
        assert executed == 0

    def test_failing_job_completes_with_error(self, tmp_path):
        from repro.runner.queue import Job

        queue = FileQueue(tmp_path / "queue")
        queue.submit(Job(job_id="bad-1", kind="mystery"))
        executed = worker_loop(
            queue, str(tmp_path / "cache"), drain_and_exit=True
        )
        assert executed == 1
        status = queue.status("bad-1")
        assert status.state == DONE
        assert status.result["ok"] is False
        assert "mystery" in status.result["error"]


_CRASHY_WORKER = """
import sys, time
from repro.runner.queue import FileQueue
queue = FileQueue(sys.argv[1])
job = queue.claim("crashy", lease_seconds=float(sys.argv[2]))
print("claimed" if job is not None else "empty", flush=True)
time.sleep(120)
"""


class TestCrashResume:
    def test_killed_worker_job_requeued_once_and_result_bit_identical(
        self, tmp_path, kmeans_profile
    ):
        # The satellite acceptance path, end to end: a worker claims a job
        # and is SIGKILLed mid-lease; the lease expires, exactly one requeue
        # happens, the resumed run completes bit-identically to serial with
        # zero duplicate replay-tier stores.
        config = tiny_config()
        key = RunSpec(kmeans_profile, config, DEFAULT_ENERGIES).replay_key()
        job = replay_job(kmeans_profile, config, key)
        queue_dir = tmp_path / "cache" / "queue"
        queue = FileQueue(queue_dir)
        queue.submit(job)

        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        lease = "0.3"
        process = subprocess.Popen(
            [sys.executable, "-c", _CRASHY_WORKER, str(queue_dir), lease],
            stdout=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            assert process.stdout.readline().strip() == "claimed"
        finally:
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=10)

        # Mid-lease: the job is leased to the (dead) worker, not expired yet.
        assert queue.status(job.job_id).state == "leased"
        assert queue.requeue_expired() == []
        time.sleep(0.35)
        # Exactly one sweeper wins the requeue; the second sweep is empty.
        assert queue.requeue_expired() == [job.job_id]
        assert queue.requeue_expired() == []
        assert queue.status(job.job_id).attempts == 1

        # Resume: drain the requeued job through the service coordinator.
        service = ExperimentService(
            cache_dir=str(tmp_path / "cache"), queue=queue, spawn_workers=False
        )
        runner = ExperimentRunner(
            cache_dir=tmp_path / "cache", max_workers=0, backend="service"
        )
        runner._service = DistributedBackend(service)
        resumed = runner.run_configs(kmeans_profile, [config])

        serial = ExperimentRunner(cache_dir=tmp_path / "serial", max_workers=0)
        expected = serial.run_configs(kmeans_profile, [config])
        assert _stats_dicts(resumed) == _stats_dicts(expected)
        assert _measurement_files(tmp_path / "cache") == 1
        assert runner.disk_cache.replay_stores == 1  # zero duplicate stores
        (report,) = runner.service_reports
        (outcome,) = report.outcomes.values()
        assert outcome.attempts == 1  # the crashed attempt is on record
        assert outcome.fresh


class TestSpawnedWorkers:
    def test_cold_plan_with_spawned_daemons_matches_serial(self, tmp_path):
        # The real multi-process path: FileQueue + forked worker daemons.
        spec = ExperimentSpec(
            systems=("BL",),
            applications=("spmv", "kmeans"),
            fidelity=TINY_FIDELITY,
        )
        serial = ExperimentRunner(cache_dir=tmp_path / "serial", max_workers=0)
        expected = serial.run_plan(spec)
        service = ExperimentRunner(
            cache_dir=tmp_path / "service", max_workers=2, backend="service"
        )
        try:
            actual = service.run_plan(spec)
            for (cell_a, stats_a), (cell_b, stats_b) in zip(expected, actual):
                assert cell_a == cell_b
                assert dataclasses.asdict(stats_a) == dataclasses.asdict(stats_b)
            assert service.replays == serial.replays
        finally:
            service.close()

    def test_close_is_idempotent_and_context_manager_closes(self, tmp_path):
        with ExperimentRunner(
            cache_dir=tmp_path / "cache", max_workers=1, backend="service"
        ) as runner:
            pass
        runner.close()  # second close is a no-op
