"""Tests for the two-phase replay/score pipeline.

Covers the JSON round-trip of :class:`ReplayMeasurement`, the measurement
tier of the on-disk cache (replay-tier hits when only analytic parameters
change, zero replays for re-scoring sweeps), bit-identicality between direct
runs and cached-measurement re-scores, the batch ``score_many`` API and the
cache maintenance CLI (temp-file handling, LRU size cap).
"""

from __future__ import annotations

import dataclasses
import json

import pytest

import repro.runner.spec as spec_module
from repro.analysis.rescoring import analytic_grid, energy_sweep, mlp_sweep
from repro.energy.components import ComponentEnergies
from repro.runner import ExperimentRunner, ExperimentSpec, using_runner
from repro.runner.cache import ResultCache
from repro.runner.cache import main as cache_cli
from repro.sim.performance_model import PerformanceModel, ReplayMeasurement
from repro.sim.simulator import GPUSimulator
from runner_test_utils import TINY_FIDELITY, tiny_config


@pytest.fixture
def runner(tmp_path) -> ExperimentRunner:
    return ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=0)


class TestMeasurementRoundTrip:
    def test_jsonable_round_trip_is_bit_identical(self, kmeans_profile):
        config = tiny_config()
        measurement = GPUSimulator(config).replay(kmeans_profile)
        payload = json.loads(json.dumps(measurement.to_jsonable()))
        restored = ReplayMeasurement.from_jsonable(payload)
        assert dataclasses.asdict(restored) == dataclasses.asdict(measurement)

    def test_scoring_restored_measurement_matches_direct_run(self, kmeans_profile):
        # Morpheus config so the predictor stats path is exercised too.
        from repro.core.config import MorpheusConfig

        config = tiny_config(
            morpheus=MorpheusConfig(), num_compute_sms=16, num_cache_sms=4
        )
        direct = GPUSimulator(config).run(kmeans_profile)
        measurement = GPUSimulator(config).replay(kmeans_profile)
        restored = ReplayMeasurement.from_jsonable(
            json.loads(json.dumps(measurement.to_jsonable()))
        )
        rescored = PerformanceModel().score(kmeans_profile, config, restored)
        assert dataclasses.asdict(rescored) == dataclasses.asdict(direct)

    def test_disk_measurement_tier_round_trip(self, tmp_path, kmeans_profile):
        config = tiny_config()
        measurement = GPUSimulator(config).replay(kmeans_profile)
        cache = ResultCache(tmp_path)
        cache.store_measurement("deadbeef", measurement)
        loaded = cache.load_measurement("deadbeef")
        assert cache.replay_hits == 1
        assert dataclasses.asdict(loaded) == dataclasses.asdict(measurement)

    def test_corrupt_measurement_is_miss(self, tmp_path, kmeans_profile):
        config = tiny_config()
        cache = ResultCache(tmp_path)
        cache.store_measurement("deadbeef", GPUSimulator(config).replay(kmeans_profile))
        cache.measurement_path_for("deadbeef").write_text("{not json")
        assert cache.load_measurement("deadbeef") is None
        assert cache.replay_misses == 1


class TestReplayTierReuse:
    def test_analytic_change_hits_measurement_tier(self, runner, kmeans_profile):
        runner.simulate(kmeans_profile, tiny_config())
        assert runner.replays == 1
        runner.simulate(kmeans_profile, tiny_config(mlp_per_sm=10.0))
        runner.simulate(kmeans_profile, tiny_config(peak_warp_ipc_per_sm=2.0))
        runner.simulate(kmeans_profile, tiny_config(power_gate_unused=False))
        runner.simulate(kmeans_profile, tiny_config(system_name="relabelled"))
        # Four analytic variants: four new stats entries, still one replay.
        assert runner.replays == 1
        assert runner.disk_cache.stores == 5
        assert runner.disk_cache.replay_stores == 1

    def test_replay_change_requires_new_replay(self, runner, kmeans_profile):
        runner.simulate(kmeans_profile, tiny_config())
        runner.simulate(kmeans_profile, tiny_config(seed=2))
        assert runner.replays == 2
        assert runner.disk_cache.replay_stores == 2

    def test_fresh_runner_rescores_from_disk_measurements(
        self, tmp_path, kmeans_profile
    ):
        config = tiny_config()
        cold = ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=0)
        cold.simulate(kmeans_profile, config)

        warm = ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=0)
        variant = tiny_config(mlp_per_sm=64.0)
        rescored = warm.simulate(kmeans_profile, variant)
        assert warm.replays == 0
        assert warm.disk_cache.replay_hits == 1
        # Bit-identical to a direct (replay + score) run of the variant.
        direct = GPUSimulator(variant).run(kmeans_profile)
        assert dataclasses.asdict(rescored) == dataclasses.asdict(direct)

    def test_score_schema_bump_keeps_measurements(
        self, tmp_path, kmeans_profile, monkeypatch
    ):
        config = tiny_config()
        ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=0).simulate(
            kmeans_profile, config
        )
        monkeypatch.setattr(spec_module, "SCORE_SCHEMA_VERSION", 999)
        bumped = ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=0)
        bumped.simulate(kmeans_profile, config)
        assert bumped.disk_cache.misses == 1  # stats tier invalidated...
        assert bumped.replays == 0  # ...but the measurement tier still serves

    def test_cache_bypass_also_replays_again(self, runner, kmeans_profile):
        config = tiny_config()
        runner.simulate(kmeans_profile, config)
        with runner.cache_bypassed():
            runner.simulate(kmeans_profile, config)
        assert runner.replays == 2

    def test_measurement_for_and_score_measurement_split(self, runner, kmeans_profile):
        # The public phase-1/phase-2 split (used by the contention solver):
        # one measurement fetch, any number of pure in-process scorings,
        # bit-identical to the full two-phase path.
        config = tiny_config()
        measurement = runner.measurement_for(kmeans_profile, config)
        assert runner.replays == 1
        assert runner.measurement_for(kmeans_profile, config) is measurement
        assert runner.replays == 1  # served from the in-process layer

        from repro.sim.performance_model import ResourceEnvelope

        contended_config = dataclasses.replace(
            config, envelope=ResourceEnvelope(dram_bandwidth_share=0.5)
        )
        stores_before = runner.disk_cache.stores
        scored = runner.score_measurement(
            kmeans_profile, contended_config, measurement
        )
        assert runner.disk_cache.stores == stores_before  # pure: no cache writes
        via_cache = runner.simulate(kmeans_profile, contended_config)
        assert runner.replays == 1
        assert dataclasses.asdict(scored) == dataclasses.asdict(via_cache)


class TestScoreMany:
    def test_mlp_grid_over_warm_cache_does_zero_replays(self, runner, kmeans_profile):
        base = tiny_config()
        runner.simulate(kmeans_profile, base)
        assert runner.replays == 1
        misses_before = runner.disk_cache.replay_misses
        grid = [
            dataclasses.replace(base, mlp_per_sm=value)
            for value in (40.0, 80.0, 160.0, 240.0, 480.0)
        ]
        stats = runner.score_many(kmeans_profile, grid)
        assert len(stats) == 5
        assert runner.replays == 1
        assert runner.disk_cache.replay_misses == misses_before

    def test_cold_batch_replays_once_per_replay_key(self, runner, kmeans_profile):
        base = tiny_config()
        configs = [
            dataclasses.replace(base, mlp_per_sm=value) for value in (40.0, 80.0)
        ] + [
            dataclasses.replace(base, seed=2, mlp_per_sm=value)
            for value in (40.0, 80.0)
        ]
        stats = runner.score_many(kmeans_profile, configs)
        assert len(stats) == 4
        assert runner.replays == 2  # one per distinct replay key (seed 1, seed 2)

    def test_serial_and_parallel_batches_are_bit_identical(
        self, tmp_path, kmeans_profile
    ):
        base = tiny_config()
        configs = [
            dataclasses.replace(base, num_compute_sms=count, mlp_per_sm=mlp)
            for count in (10, 20)
            for mlp in (160.0, 320.0)
        ]
        serial = ExperimentRunner(
            cache_dir=tmp_path / "serial", max_workers=0
        ).score_many(kmeans_profile, configs)
        parallel = ExperimentRunner(
            cache_dir=tmp_path / "parallel", max_workers=2
        ).score_many(kmeans_profile, configs)
        assert [dataclasses.asdict(s) for s in serial] == [
            dataclasses.asdict(s) for s in parallel
        ]

    def test_parallel_plan_counts_worker_replays(self, tmp_path):
        spec = ExperimentSpec(
            systems=("BL",), applications=("kmeans", "cfd"), fidelity=TINY_FIDELITY
        )
        runner = ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=2)
        with using_runner(runner):
            runner.run_plan(spec)
        # A cold plan must show its replays and replay-tier misses even
        # when workers did them (tier counters are folded back too).
        assert runner.replays > 0
        assert runner.disk_cache.replay_misses > 0
        assert runner.disk_cache.replay_stores > 0

    def test_warm_plan_rerun_has_zero_replay_misses(self, tmp_path):
        spec = ExperimentSpec(
            systems=("BL", "IBL"), applications=("kmeans",), fidelity=TINY_FIDELITY
        )
        cold = ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=0)
        with using_runner(cold):
            cold.run_plan(spec)
        warm = ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=0)
        with using_runner(warm):
            warm.run_plan(spec)
        assert warm.replays == 0
        assert warm.disk_cache.replay_misses == 0
        assert warm.disk_cache.misses == 0


class TestRescoringSweeps:
    def test_mlp_sweep_zero_replays_when_warm(self, runner, kmeans_profile):
        base = tiny_config()
        with using_runner(runner):
            runner.simulate(kmeans_profile, base)
            sweep = mlp_sweep(kmeans_profile, base, (80.0, 160.0, 320.0))
        assert set(sweep) == {80.0, 160.0, 320.0}
        assert runner.replays == 1  # only the initial simulate
        # A tighter MLP bound can only lower the latency-limited IPC.
        assert sweep[80.0].limits["latency"] <= sweep[320.0].limits["latency"]

    def test_analytic_grid_zero_replays_when_warm(self, runner, kmeans_profile):
        base = tiny_config()
        with using_runner(runner):
            runner.simulate(kmeans_profile, base)
            grid = analytic_grid(
                kmeans_profile, base, mlp_values=(160.0, 320.0),
                peak_ipc_values=(2.0, 4.0),
            )
        assert len(grid) == 4
        assert runner.replays == 1

    def test_energy_model_is_read_only(self, runner):
        # Swapping the model mid-life would desync score keys from the
        # scoring constants and poison the shared cache.
        from repro.energy.model import EnergyModel

        with pytest.raises(AttributeError):
            runner.energy_model = EnergyModel()

    def test_clear_scored_stats_keeps_measurements(self, runner, kmeans_profile):
        config = tiny_config()
        runner.simulate(kmeans_profile, config)
        runner.clear_scored_stats()
        assert len(runner.disk_cache) == 1  # stats gone, measurement kept
        rescored = runner.simulate(kmeans_profile, config)
        assert runner.replays == 1  # re-scored, not re-replayed
        assert rescored.ipc > 0

    def test_clear_scored_stats_without_disk_cache_keeps_memory_measurements(
        self, tmp_path, kmeans_profile
    ):
        runner = ExperimentRunner(
            cache_dir=tmp_path / "cache", max_workers=0, use_disk_cache=False
        )
        config = tiny_config()
        runner.simulate(kmeans_profile, config)
        runner.clear_scored_stats()
        runner.simulate(kmeans_profile, config)
        assert runner.replays == 1  # in-memory measurement survived the clear

    def test_energy_sweep_shares_measurements(self, runner, kmeans_profile):
        base = tiny_config()
        with using_runner(runner):
            baseline = runner.simulate(kmeans_profile, base)
            sweep = energy_sweep(
                kmeans_profile,
                base,
                (
                    ComponentEnergies(),
                    ComponentEnergies(dram_pj_per_byte=999.0),
                ),
            )
        assert runner.replays == 1
        default, expensive = list(sweep.values())
        assert dataclasses.asdict(default) == dataclasses.asdict(baseline)
        assert expensive.energy.dram_j > default.energy.dram_j


class TestCacheMaintenance:
    def _populated(self, tmp_path, kmeans_profile) -> ResultCache:
        runner = ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=0)
        runner.simulate(kmeans_profile, tiny_config())
        runner.simulate(kmeans_profile, tiny_config(mlp_per_sm=10.0))
        return runner.disk_cache

    def test_len_counts_both_tiers_without_temp_files(self, tmp_path, kmeans_profile):
        cache = self._populated(tmp_path, kmeans_profile)
        assert len(cache) == 3  # two stats entries + one measurement
        shard = cache.path_for("deadbeef").parent
        shard.mkdir(parents=True, exist_ok=True)
        (shard / ".tmp-crashed-worker.json").write_text("{}")
        assert len(cache) == 3  # temp files are not entries

    def test_prune_sweeps_stale_temp_files(self, tmp_path, kmeans_profile):
        import os

        cache = self._populated(tmp_path, kmeans_profile)
        shard = cache.measurement_path_for("deadbeef").parent
        shard.mkdir(parents=True, exist_ok=True)
        stale = shard / ".tmp-crashed-worker.json"
        stale.write_text("{}")
        fresh = shard / ".tmp-live-write.json"
        fresh.write_text("{}")
        # Only temp files past the age threshold are crashed-worker leftovers;
        # a fresh one may be another worker's in-flight atomic write.
        old = os.stat(stale).st_mtime - cache.STALE_TEMP_SECONDS - 1
        os.utime(stale, (old, old))
        removed = cache.prune()
        assert removed == 4  # 3 entries + 1 stale temp file
        assert not stale.exists()
        assert fresh.exists()
        assert len(cache) == 0

    def test_prune_single_tier(self, tmp_path, kmeans_profile):
        cache = self._populated(tmp_path, kmeans_profile)
        [entry] = [path.stem for path in cache._measurements.entries()]
        removed = cache.prune(tier=ResultCache.STATS_TIER)
        assert removed == 2
        assert len(cache) == 1  # the measurement survived...
        assert cache.load_measurement(entry) is not None  # ...and still loads

    def test_prune_max_bytes_evicts_lru_first(self, tmp_path):
        import os
        import time

        cache = ResultCache(tmp_path / "cache")
        for index, key in enumerate(("aa" + "0" * 62, "bb" + "1" * 62, "cc" + "2" * 62)):
            cache._stats.store_payload(key, {"key": key, "stats": {"pad": "x" * 100}})
            # Space the mtimes out so LRU ordering is deterministic.
            os.utime(cache.path_for(key), (1000 + index, 1000 + index))
        total = cache.size_bytes()
        removed = cache.prune(max_bytes=total - 1)
        assert removed == 1
        assert not cache.path_for("aa" + "0" * 62).exists()  # oldest went first
        assert cache.path_for("cc" + "2" * 62).exists()

    def test_prune_legacy_single_tier_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        legacy = cache.directory / "ab" / ("ab" + "0" * 62 + ".json")
        legacy.parent.mkdir(parents=True)
        legacy.write_text("{}")
        assert len(cache) == 0  # not a two-tier entry
        assert cache.prune() == 1
        assert not legacy.exists()

    def test_prune_max_bytes_also_sweeps_legacy_orphans(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        legacy = cache.directory / "ab" / ("ab" + "0" * 62 + ".json")
        legacy.parent.mkdir(parents=True)
        legacy.write_text("{}")
        # Cap far above the total: no tier entry qualifies for LRU
        # eviction, but the unreadable legacy orphan goes regardless.
        assert cache.prune(max_bytes=10**9) == 1
        assert not legacy.exists()

    def test_cli_stats_and_prune(self, tmp_path, kmeans_profile, capsys):
        cache = self._populated(tmp_path, kmeans_profile)
        directory = str(cache.directory)
        assert cache_cli(["--cache-dir", directory, "stats"]) == 0
        out = capsys.readouterr().out
        assert "stats" in out and "measurements" in out

        assert cache_cli(["--cache-dir", directory, "prune"]) == 0
        out = capsys.readouterr().out
        assert "removed 3 files" in out
        assert len(ResultCache(directory)) == 0

    def test_cli_prune_max_bytes_keeps_cache_under_cap(
        self, tmp_path, kmeans_profile
    ):
        cache = self._populated(tmp_path, kmeans_profile)
        directory = str(cache.directory)
        assert cache_cli(["--cache-dir", directory, "prune", "--max-bytes", "1"]) == 0
        survivor = ResultCache(directory)
        assert survivor.size_bytes() <= 1
        assert len(survivor) == 0
