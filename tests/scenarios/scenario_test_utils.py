"""Shared helpers for the scenario test suites (not collected by pytest)."""

from __future__ import annotations

from fidelity_utils import TINY_FIDELITY

__all__ = ["TINY_FIDELITY"]
