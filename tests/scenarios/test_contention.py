"""Tests for shared-bandwidth contention: envelopes, the fixed-point solver,
the slowdown decomposition, scenario-aggregate persistence and the solo
reference memoization.

The load-bearing contracts:

* the default (whole-GPU) envelope scores bit-identically to the
  pre-envelope model, so every single-tenant result is unchanged;
* the co-run fixed point is deterministic (serial == parallel), bounded,
  and score-tier-only (a contended re-run never replays a trace);
* a saturating symmetric co-run slows both residents to their
  demand-proportional shares of the contended channel;
* ``contention_breakdown`` decomposes each resident's slowdown exactly
  into extended-LLC-grant and bandwidth-interference components.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.rescoring import envelope_sweep
from repro.analysis.scenarios import contention_breakdown, corun_table, per_app_timelines
from repro.runner import ExperimentRunner, using_runner
from repro.runner.cache import main as cache_cli
from repro.scenarios import (
    ContentionModel,
    Residency,
    ScenarioEngine,
    ScenarioPhase,
    ScenarioSpec,
    corun_overlap,
    proportional_pressure_shares,
)
from repro.sim.performance_model import (
    DEFAULT_ENVELOPE,
    ResourceEnvelope,
    shared_bandwidth_capacities,
    shared_bandwidth_demand,
)
from repro.workloads.applications import get_application
from scenario_test_utils import TINY_FIDELITY

#: One saturating symmetric co-run phase: both residents are DRAM-bound and
#: each alone demands the GPU's full DRAM bandwidth, so the fixed point
#: must split the channel roughly in half.
SATURATING = ScenarioSpec(
    name="saturating",
    phases=(
        ScenarioPhase(residents=(Residency("spmv", 28), Residency("cfd", 24))),
    ),
)


def _engine(tmp_path, workers=0, **kwargs) -> ScenarioEngine:
    runner = ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=workers)
    return ScenarioEngine(runner=runner, fidelity=TINY_FIDELITY, **kwargs)


def _snapshot(result):
    return [
        (
            execution.index,
            [
                (
                    resident.application,
                    dataclasses.asdict(resident.stats),
                    resident.instructions,
                    dataclasses.asdict(resident.envelope),
                    resident.uncontended_ipc,
                )
                for resident in execution.residents
            ],
            execution.compute_cycles,
        )
        for execution in result.phases
    ]


class TestResourceEnvelope:
    def test_share_validation(self):
        with pytest.raises(ValueError, match="dram_bandwidth_share"):
            ResourceEnvelope(dram_bandwidth_share=0.0)
        with pytest.raises(ValueError, match="llc_bandwidth_share"):
            ResourceEnvelope(llc_bandwidth_share=1.5)
        with pytest.raises(ValueError, match="noc_bandwidth_share"):
            ResourceEnvelope(noc_bandwidth_share=-0.1)
        assert DEFAULT_ENVELOPE.is_default
        assert not ResourceEnvelope(dram_bandwidth_share=0.5).is_default

    def test_envelope_scales_the_shared_limits(self, tmp_path, kmeans_profile):
        runner = ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=0)
        base_config = dataclasses.replace(
            _leaf_config(tmp_path), envelope=DEFAULT_ENVELOPE
        )
        halved = dataclasses.replace(
            base_config,
            envelope=ResourceEnvelope(
                dram_bandwidth_share=0.5,
                llc_bandwidth_share=0.25,
                noc_bandwidth_share=0.75,
            ),
        )
        base = runner.simulate(kmeans_profile, base_config)
        contended = runner.simulate(kmeans_profile, halved)
        assert contended.limits["dram_bandwidth"] == pytest.approx(
            0.5 * base.limits["dram_bandwidth"]
        )
        assert contended.limits["llc_bandwidth"] == pytest.approx(
            0.25 * base.limits["llc_bandwidth"]
        )
        assert contended.limits["noc_bandwidth"] == pytest.approx(
            0.75 * base.limits["noc_bandwidth"]
        )
        # Compute and latency limits are private to the run, not enveloped.
        assert contended.limits["compute"] == base.limits["compute"]
        assert contended.limits["latency"] == base.limits["latency"]
        # One replay key serves both scorings.
        assert runner.replays == 1

    def test_envelope_sweep_rescoring_is_replay_free(self, tmp_path, kmeans_profile):
        runner = ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=0)
        config = _leaf_config(tmp_path)
        runner.simulate(kmeans_profile, config)
        assert runner.replays == 1
        shares = (1.0, 0.75, 0.5, 0.25)
        sweep = envelope_sweep(
            kmeans_profile,
            config,
            [ResourceEnvelope(dram_bandwidth_share=share) for share in shares],
            runner=runner,
        )
        assert runner.replays == 1  # the whole sweep re-scored from cache
        ipcs = [sweep[envelope].ipc for envelope in sweep]
        # kmeans is memory-bound: shrinking its DRAM slice must not raise
        # IPC, and a small enough slice must strictly bind.
        assert all(later <= earlier for earlier, later in zip(ipcs, ipcs[1:]))
        assert ipcs[-1] < ipcs[0]


def _leaf_config(tmp_path):
    from repro.sim.simulator import SimulationConfig

    return SimulationConfig(
        num_compute_sms=24,
        power_gate_unused=True,
        capacity_scale=TINY_FIDELITY.capacity_scale,
        trace_accesses=TINY_FIDELITY.trace_accesses,
        warmup_accesses=TINY_FIDELITY.warmup_accesses,
        system_name="test",
        seed=1,
    )


class TestProportionalPressureShares:
    def test_shares_follow_demand_and_sum_to_one(self):
        demands = [
            {"dram": 300.0, "llc": 10.0, "noc": 0.0},
            {"dram": 100.0, "llc": 30.0, "noc": 0.0},
        ]
        targets = proportional_pressure_shares(demands)
        assert targets[0]["dram"] == pytest.approx(0.75)
        assert targets[1]["dram"] == pytest.approx(0.25)
        assert targets[0]["llc"] == pytest.approx(0.25)
        assert targets[1]["llc"] == pytest.approx(0.75)
        # A channel nobody demands splits evenly (its limit is unbounded).
        assert targets[0]["noc"] == targets[1]["noc"] == pytest.approx(0.5)
        for channel in ("dram", "llc", "noc"):
            assert sum(t[channel] for t in targets) == pytest.approx(1.0)

    def test_zero_demand_resident_keeps_an_epsilon_share(self):
        targets = proportional_pressure_shares(
            [{"dram": 500.0, "llc": 0.0, "noc": 0.0}, {"dram": 0.0, "llc": 0.0, "noc": 0.0}]
        )
        assert targets[1]["dram"] > 0.0  # envelopes forbid zero shares

    def test_model_validation(self):
        with pytest.raises(ValueError, match="damping"):
            ContentionModel(damping=0.0)
        with pytest.raises(ValueError, match="damping"):
            ContentionModel(damping=1.5)
        with pytest.raises(ValueError, match="max_iterations"):
            ContentionModel(max_iterations=0)
        with pytest.raises(ValueError, match="tolerance"):
            ContentionModel(tolerance=0.0)


class TestSingleTenantUnchanged:
    def test_single_tenant_phases_match_direct_leaf_runs(self, tmp_path):
        # The refactor's bit-identity guarantee: with the default envelope a
        # single-tenant timeline scores exactly what a direct runner.simulate
        # of each leaf config scores — the contention layer is invisible.
        from repro.scenarios import bursty

        engine = _engine(tmp_path)
        scenario = bursty(bursts=1)
        with using_runner(engine.runner):
            result = engine.run(scenario, "Morpheus-Basic")
            lowered = engine.lower(scenario, "Morpheus-Basic")
        profile = get_application("kmeans")
        for execution, phase in zip(result.phases, lowered):
            resident = execution.residents[0]
            direct = engine.runner.simulate(profile, phase.leaves[0].config)
            assert dataclasses.asdict(resident.stats) == dataclasses.asdict(direct)
            assert resident.envelope == DEFAULT_ENVELOPE
            assert resident.uncontended_ipc == resident.stats.ipc
            assert resident.bandwidth_interference_fraction == 0.0


class TestFixedPoint:
    def test_saturating_corun_slows_both_by_their_demand_shares(self, tmp_path):
        engine = _engine(tmp_path)
        with using_runner(engine.runner):
            result = engine.run(SATURATING, "Morpheus-Basic")
        residents = result.phases[0].residents
        gpu = engine.gpu
        capacity = shared_bandwidth_capacities(gpu)["dram"]
        total_demand = 0.0
        for resident in residents:
            # Both residents were DRAM-bound alone, each demanding the full
            # channel, so each converges to ~half its uncontended IPC.
            assert resident.stats.bottleneck == "dram_bandwidth"
            ratio = resident.stats.ipc / resident.uncontended_ipc
            assert 0.45 < ratio < 0.56
            total_demand += shared_bandwidth_demand(resident.stats, gpu)["dram"]
        # At the fixed point the contended channel is exactly saturated:
        # aggregate demand equals capacity (up to solver tolerance).
        assert total_demand == pytest.approx(capacity, rel=1e-3)
        shares = [r.envelope.dram_bandwidth_share for r in residents]
        assert sum(shares) == pytest.approx(1.0, rel=1e-6)

    def test_fast_scoring_matches_the_legacy_per_call_path(self, tmp_path):
        from repro.scenarios.contention import solve_phase_contention

        runner = ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=0)
        gpu = _leaf_config(tmp_path).gpu
        leaves = [
            (
                get_application(app),
                dataclasses.replace(
                    _leaf_config(tmp_path), num_compute_sms=sms, system_name=app
                ),
            )
            for app, sms in (("spmv", 28), ("cfd", 24))
        ]
        uncontended = runner.run_leaves(leaves)
        fast = solve_phase_contention(
            runner, gpu, leaves, uncontended, ContentionModel(), fast_scoring=True
        )
        legacy = solve_phase_contention(
            runner, gpu, leaves, uncontended, ContentionModel(), fast_scoring=False
        )
        # The precomputed-scorer fast path is an optimization, not a model
        # change: solutions must be bit-identical to per-call scoring.
        assert fast.iterations == legacy.iterations
        assert fast.converged == legacy.converged
        assert fast.envelopes == legacy.envelopes
        for fast_stats, legacy_stats in zip(fast.stats, legacy.stats):
            assert dataclasses.asdict(fast_stats) == dataclasses.asdict(legacy_stats)

    def test_solver_is_deterministic_across_worker_counts(self, tmp_path):
        serial = _engine(tmp_path / "serial", workers=0)
        parallel = _engine(tmp_path / "parallel", workers=2)
        scenario = corun_overlap(rounds=2)
        with using_runner(serial.runner):
            serial_run = serial.run(scenario, "Morpheus-ALL")
        with using_runner(parallel.runner):
            parallel_run = parallel.run(scenario, "Morpheus-ALL")
        assert _snapshot(serial_run) == _snapshot(parallel_run)
        assert serial_run.run_key == parallel_run.run_key

    def test_disabled_model_reproduces_uncontended_corun(self, tmp_path):
        contended = _engine(tmp_path)
        disabled = ScenarioEngine(
            runner=contended.runner,
            fidelity=TINY_FIDELITY,
            contention=ContentionModel(enabled=False),
        )
        with using_runner(contended.runner):
            contended_run = contended.run(SATURATING, "Morpheus-Basic")
            disabled_run = disabled.run(SATURATING, "Morpheus-Basic")
        assert contended_run.run_key != disabled_run.run_key
        for execution in disabled_run.phases:
            for resident in execution.residents:
                assert resident.envelope == DEFAULT_ENVELOPE
                assert resident.stats.ipc == resident.uncontended_ipc
        # The contended run throttled what the disabled run did not.
        for contended_exec, disabled_exec in zip(
            contended_run.phases, disabled_run.phases
        ):
            for contended_res, disabled_res in zip(
                contended_exec.residents, disabled_exec.residents
            ):
                assert contended_res.stats.ipc < disabled_res.stats.ipc

    def test_contended_rerun_is_score_tier_only(self, tmp_path):
        # Re-solving with different solver knobs re-scores cached
        # measurements: stats-tier misses, but zero replays and zero
        # replay-tier misses — contention never touches the replay tier.
        cold = _engine(tmp_path)
        with using_runner(cold.runner):
            cold.run(SATURATING, "Morpheus-Basic")
        assert cold.runner.replays > 0

        runner = ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=0)
        perturbed = ScenarioEngine(
            runner=runner,
            fidelity=TINY_FIDELITY,
            contention=ContentionModel(damping=0.25),
        )
        with using_runner(runner):
            result = perturbed.run(SATURATING, "Morpheus-Basic")
        assert runner.replays == 0
        assert runner.disk_cache.replay_misses == 0
        assert runner.disk_cache.misses > 0  # new envelopes were re-scored
        # A different damping path converges to (nearly) the same fixed point.
        assert result.phases[0].residents[0].stats.ipc == pytest.approx(
            0.5 * result.phases[0].residents[0].uncontended_ipc, rel=0.1
        )


class TestContentionDecomposition:
    @pytest.fixture(scope="class")
    def corun_runs(self, tmp_path_factory):
        runner = ExperimentRunner(
            cache_dir=tmp_path_factory.mktemp("cache"), max_workers=0
        )
        engine = ScenarioEngine(runner=runner, fidelity=TINY_FIDELITY)
        scenario = corun_overlap(rounds=2)
        with using_runner(runner):
            result = engine.run(scenario, "Morpheus-ALL")
            references = engine.solo_reference_ipcs(scenario, "Morpheus-ALL")
        return result, references

    def test_bandwidth_interference_cycles_are_nonzero(self, corun_runs):
        # The acceptance criterion: a corun_overlap run shows nonzero
        # bandwidth-interference cycles — the leaves no longer each own the
        # whole DRAM system.
        result, references = corun_runs
        breakdown = contention_breakdown(result, references)
        assert breakdown.bandwidth_interference_cycles > 0
        for app in breakdown.per_app:
            assert app.bandwidth_interference_cycles > 0
            assert app.uncontended_ipc >= app.ipc

    def test_decomposition_sums_exactly(self, corun_runs):
        result, references = corun_runs
        breakdown = contention_breakdown(result, references)
        for app in breakdown.per_app:
            assert app.contention_cycles == pytest.approx(
                app.capacity_grant_cycles + app.bandwidth_interference_cycles
            )
        timelines = per_app_timelines(result)
        for app in breakdown.per_app:
            timeline = timelines[app.application]
            assert timeline.uncontended_slice_ipc >= timeline.slice_ipc

    def test_corun_table_reports_the_components(self, corun_runs):
        result, references = corun_runs
        table = corun_table(result, references)
        assert "grant cycles" in table
        assert "bandwidth cycles" in table
        assert "uncontended IPC" in table


class TestScenarioAggregateStore:
    def test_warm_rerun_loads_the_aggregate_not_the_leaves(self, tmp_path):
        cold = _engine(tmp_path)
        with using_runner(cold.runner):
            cold_run = cold.run(SATURATING, "Morpheus-Basic")
        assert cold.runner.disk_cache.scenario_stores == 1

        warm = _engine(tmp_path)
        with using_runner(warm.runner):
            warm_run = warm.run(SATURATING, "Morpheus-Basic")
        cache = warm.runner.disk_cache
        assert cache.scenario_hits == 1
        # Served wholly from the scenario tier: no leaf-tier traffic at all.
        assert cache.hits == cache.misses == 0
        assert cache.replay_hits == cache.replay_misses == 0
        assert warm.runner.replays == 0
        # And the reloaded aggregate is bit-identical to the computed one.
        assert _snapshot(cold_run) == _snapshot(warm_run)
        assert warm_run.run_key == cold_run.run_key
        assert warm_run.policy_name == cold_run.policy_name
        assert [dataclasses.asdict(e.decision.transition) for e in warm_run.phases] == [
            dataclasses.asdict(e.decision.transition) for e in cold_run.phases
        ]

    def test_same_runner_rerun_is_served_from_memory(self, tmp_path):
        engine = _engine(tmp_path)
        with using_runner(engine.runner):
            first = engine.run(SATURATING, "Morpheus-Basic")
            disk_hits = engine.runner.disk_cache.scenario_hits
            second = engine.run(SATURATING, "Morpheus-Basic")
        assert engine.runner.disk_cache.scenario_hits == disk_hits
        assert _snapshot(first) == _snapshot(second)

    def test_cache_bypass_recomputes_the_aggregate(self, tmp_path):
        engine = _engine(tmp_path)
        with using_runner(engine.runner):
            engine.run(SATURATING, "Morpheus-Basic")
            stores = engine.runner.disk_cache.scenario_stores
            with engine.runner.cache_bypassed():
                engine.run(SATURATING, "Morpheus-Basic")
        assert engine.runner.disk_cache.scenario_stores == stores + 1

    @pytest.mark.parametrize(
        "corruption",
        [
            {"policy_name": "x"},  # missing phases entirely
            "out_of_range_index",  # phases[0].index beyond the scenario
            "negative_index",  # would silently attach the wrong phase
            "extra_phase",  # phase count disagrees with the scenario
        ],
    )
    def test_malformed_aggregate_is_recomputed(self, tmp_path, corruption):
        engine = _engine(tmp_path)
        with using_runner(engine.runner):
            result = engine.run(SATURATING, "Morpheus-Basic")
        # Corrupt the stored aggregate, then re-run through a fresh runner.
        if corruption == "out_of_range_index":
            payload = ScenarioEngine._result_to_payload(result)
            payload["phases"][0]["index"] = 99
        elif corruption == "negative_index":
            payload = ScenarioEngine._result_to_payload(result)
            payload["phases"][0]["index"] = -1
        elif corruption == "extra_phase":
            payload = ScenarioEngine._result_to_payload(result)
            payload["phases"].append(payload["phases"][0])
        else:
            payload = corruption
        engine.runner.disk_cache.store_scenario(result.run_key, payload)
        fresh = _engine(tmp_path)
        with using_runner(fresh.runner):
            recomputed = fresh.run(SATURATING, "Morpheus-Basic")
        assert _snapshot(recomputed) == _snapshot(result)

    def test_cache_cli_reports_the_scenario_tier(self, tmp_path, capsys):
        engine = _engine(tmp_path)
        with using_runner(engine.runner):
            engine.run(SATURATING, "Morpheus-Basic")
        assert cache_cli(["--cache-dir", str(tmp_path / "cache"), "stats"]) == 0
        output = capsys.readouterr().out
        assert "scenarios" in output
        line = next(line for line in output.splitlines() if "scenarios" in line)
        assert "1 entries" in " ".join(line.split())

    def test_run_key_covers_the_contention_knobs(self, tmp_path):
        engine = _engine(tmp_path)
        damped = ScenarioEngine(
            runner=engine.runner,
            fidelity=TINY_FIDELITY,
            contention=ContentionModel(damping=0.25),
        )
        assert engine.run_key(SATURATING, "Morpheus-Basic") != damped.run_key(
            SATURATING, "Morpheus-Basic"
        )


class TestSoloReferenceMemoization:
    def test_second_call_does_zero_runner_work(self, tmp_path):
        engine = _engine(tmp_path)
        scenario = corun_overlap(rounds=1)
        with using_runner(engine.runner):
            first = engine.solo_reference_ipcs(scenario, "Morpheus-Basic")
            runner = engine.runner
            before = (
                runner.replays,
                runner.memory_hits,
                runner.measurement_memory_hits,
                runner.disk_cache.tier_counters(),
            )
            second = engine.solo_reference_ipcs(scenario, "Morpheus-Basic")
            after = (
                runner.replays,
                runner.memory_hits,
                runner.measurement_memory_hits,
                runner.disk_cache.tier_counters(),
            )
        assert first == second
        assert before == after  # not a single lookup, load or replay

    def test_memo_returns_a_defensive_copy(self, tmp_path):
        engine = _engine(tmp_path)
        scenario = corun_overlap(rounds=1)
        with using_runner(engine.runner):
            first = engine.solo_reference_ipcs(scenario, "Morpheus-Basic")
            first["spmv"] = -1.0
            second = engine.solo_reference_ipcs(scenario, "Morpheus-Basic")
        assert second["spmv"] != -1.0

    def test_memo_distinguishes_policies(self, tmp_path):
        from repro.scenarios import DynamicCapacityManager, FixedSplitPolicy

        engine = _engine(tmp_path)
        scenario = corun_overlap(rounds=1)
        with using_runner(engine.runner):
            dynamic = engine.solo_reference_ipcs(
                scenario, "Morpheus-Basic", DynamicCapacityManager()
            )
            static = engine.solo_reference_ipcs(
                scenario, "Morpheus-Basic", FixedSplitPolicy()
            )
        # Different policies may legitimately coincide numerically on some
        # timelines, but they must not share one memo slot.
        assert len(engine._solo_reference_memo) == 2
        assert set(dynamic) == set(static) == {"spmv", "cfd"}
