"""Tests for concurrent co-run phases and shared extended-LLC arbitration.

Covers the multi-resident spec surface, the arbitration modes, per-resident
transition accounting (including the hysteresis edge cases: zero-idle
phases and back-to-back application changes), multi-resident lowering and
execution, and the co-run analysis metrics.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.scenarios import (
    contention_breakdown,
    corun_table,
    fairness,
    per_app_timelines,
    phase_table,
    weighted_speedup,
)
from repro.core.config import MorpheusConfig
from repro.gpu.config import RTX3080_CONFIG
from repro.runner import ExperimentRunner, using_runner
from repro.scenarios import (
    DynamicCapacityManager,
    FixedSplitPolicy,
    Residency,
    ScenarioEngine,
    ScenarioPhase,
    ScenarioSpec,
    TransitionCostModel,
    arbitrate_extended_llc,
    corun_overlap,
    get_scenario,
    llc_capacity_sensitivity,
    max_cache_mode_sms,
    mixed_tenancy,
)
from repro.workloads.applications import get_application
from scenario_test_utils import TINY_FIDELITY

GPU = RTX3080_CONFIG
MORPHEUS = MorpheusConfig()
MODEL = TransitionCostModel()
PROFILES = {name: get_application(name) for name in ("kmeans", "cfd", "spmv")}


def _plan(policy, scenario):
    profiles = {name: get_application(name) for name in scenario.applications}
    return policy.plan(scenario, GPU, MORPHEUS, profiles, MODEL)


def _corun_phase(sms_a=28, sms_b=24, **overrides):
    base = dict(
        residents=(Residency("kmeans", sms_a), Residency("cfd", sms_b)),
    )
    base.update(overrides)
    return ScenarioPhase(**base)


@pytest.fixture
def engine(tmp_path):
    runner = ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=0)
    return ScenarioEngine(runner=runner, fidelity=TINY_FIDELITY)


class TestCorunSpec:
    def test_residency_validation(self):
        with pytest.raises(ValueError):
            Residency("", 10)
        with pytest.raises(ValueError):
            Residency("kmeans", 0)

    def test_both_constructor_forms_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            ScenarioPhase(
                application="kmeans",
                compute_sm_demand=10,
                residents=(Residency("cfd", 10),),
            )

    def test_duplicate_residents_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            ScenarioPhase(
                residents=(Residency("kmeans", 10), Residency("kmeans", 12))
            )

    def test_single_resident_forms_are_canonical(self):
        legacy = ScenarioPhase(application="kmeans", compute_sm_demand=24)
        modern = ScenarioPhase(residents=(Residency("kmeans", 24),))
        assert legacy == modern
        assert legacy.application == "kmeans"
        assert legacy.compute_sm_demand == 24
        assert not legacy.is_corun

    def test_corun_phase_properties(self):
        phase = _corun_phase(sms_a=28, sms_b=24)
        assert phase.is_corun
        assert phase.application is None
        assert phase.compute_sm_demand is None
        assert phase.applications == ("kmeans", "cfd")
        assert phase.total_compute_sm_demand == 52
        assert phase.describe() == "kmeans+cfd"

    def test_spec_aggregates_cover_residents(self):
        spec = ScenarioSpec(
            name="mix",
            phases=(
                ScenarioPhase(application="spmv", compute_sm_demand=60),
                _corun_phase(sms_a=28, sms_b=24),
            ),
        )
        assert spec.applications == ("spmv", "kmeans", "cfd")
        assert spec.max_compute_sm_demand == 60
        assert spec.has_corun_phases

    def test_library_shapes(self):
        overlap = corun_overlap(rounds=2)
        assert len(overlap) == 4
        assert all(phase.is_corun for phase in overlap.phases)
        tenancy = mixed_tenancy(rounds=1)
        assert [phase.is_corun for phase in tenancy.phases] == [False, True, False]
        assert get_scenario("corun_overlap", rounds=1).name == "corun_overlap"
        assert get_scenario("mixed_tenancy").name == "mixed_tenancy"
        with pytest.raises(ValueError):
            corun_overlap(dip_sms_b=30, sms_b=24)

    def test_corun_changes_scenario_key(self):
        solo = ScenarioSpec(
            name="a", phases=(ScenarioPhase(application="kmeans", compute_sm_demand=52),)
        )
        corun = ScenarioSpec(name="a", phases=(_corun_phase(28, 24),))
        assert solo.scenario_key() != corun.scenario_key()


class TestArbitration:
    RESIDENTS = (Residency("kmeans", 30), Residency("cfd", 10))

    def test_grants_sum_to_exactly_the_pool(self):
        for pool in range(0, 45):
            for mode in ("proportional", "sensitivity"):
                shares = arbitrate_extended_llc(pool, self.RESIDENTS, PROFILES, mode)
                assert sum(shares.values()) == pool
                assert all(share >= 0 for share in shares.values())

    def test_proportional_follows_compute_shares(self):
        shares = arbitrate_extended_llc(28, self.RESIDENTS, PROFILES, "proportional")
        assert shares == {"kmeans": 21, "cfd": 7}

    def test_sensitivity_weighting_shifts_grants(self):
        residents = (Residency("kmeans", 20), Residency("cfd", 20))
        proportional = arbitrate_extended_llc(30, residents, PROFILES, "proportional")
        sensitive = arbitrate_extended_llc(30, residents, PROFILES, "sensitivity")
        assert proportional == {"kmeans": 15, "cfd": 15}
        # kmeans misses the L1 more and streams less than cfd, so the
        # sensitivity mode steers pooled capacity toward it.
        assert llc_capacity_sensitivity(PROFILES["kmeans"]) > llc_capacity_sensitivity(
            PROFILES["cfd"]
        )
        assert sensitive["kmeans"] > sensitive["cfd"]
        assert sum(sensitive.values()) == 30

    def test_zero_sensitivity_degrades_to_proportional(self):
        # Fully streaming residents have zero capacity sensitivity; the
        # sensitivity mode must fall back to the compute-share split (not
        # equal shares), so an epsilon of sensitivity never causes a jump.
        import dataclasses as dc

        streaming = {
            name: dc.replace(profile, streaming_fraction=1.0)
            for name, profile in PROFILES.items()
        }
        residents = (Residency("kmeans", 40), Residency("cfd", 8))
        assert all(llc_capacity_sensitivity(p) == 0.0 for p in streaming.values())
        sensitive = arbitrate_extended_llc(12, residents, streaming, "sensitivity")
        proportional = arbitrate_extended_llc(12, residents, streaming, "proportional")
        assert sensitive == proportional == {"kmeans": 10, "cfd": 2}

    def test_invalid_mode_and_pool_raise(self):
        with pytest.raises(ValueError, match="arbitration"):
            arbitrate_extended_llc(10, self.RESIDENTS, PROFILES, "magic")
        with pytest.raises(ValueError, match="pool_sms"):
            arbitrate_extended_llc(-1, self.RESIDENTS, PROFILES)
        with pytest.raises(ValueError, match="arbitration"):
            DynamicCapacityManager(arbitration="magic")
        with pytest.raises(ValueError, match="arbitration"):
            FixedSplitPolicy(arbitration="magic")


class TestCorunPolicies:
    def test_grants_never_exceed_pooled_idle_sms(self):
        scenario = corun_overlap(sms_a=28, sms_b=24, dip_sms_b=8, rounds=2)
        for policy in (
            DynamicCapacityManager(),
            DynamicCapacityManager(arbitration="sensitivity"),
            FixedSplitPolicy(),
            FixedSplitPolicy(arbitration="sensitivity"),
        ):
            for decision, phase in zip(_plan(policy, scenario), scenario.phases):
                idle = GPU.num_sms - phase.total_compute_sm_demand
                pool = min(idle, max_cache_mode_sms(GPU, MORPHEUS))
                granted = sum(grant.cache_sms for grant in decision.grants)
                assert granted <= pool
                assert granted == decision.split.num_cache_sms

    def test_dynamic_pool_grows_in_dips_and_charges_per_resident(self):
        scenario = corun_overlap(sms_a=28, sms_b=24, dip_sms_b=8, rounds=1)
        decisions = _plan(DynamicCapacityManager(), scenario)
        full, dip = decisions
        assert dip.split.num_cache_sms > full.split.num_cache_sms
        # Entering the dip only grows capacity: warm-up, no flush.
        assert dip.transition.warmup_cycles > 0
        assert dip.transition.flush_cycles == 0

    def test_grant_shrink_flushes_only_the_shrinking_resident(self):
        # cfd's dip ends: the pool shrinks and (proportionally) both grants
        # move, but only grants that shrink pay flushes — and the flush uses
        # each shrinking resident's own write mix.
        scenario = corun_overlap(sms_a=28, sms_b=24, dip_sms_b=8, rounds=2)
        decisions = _plan(DynamicCapacityManager(), scenario)
        refull = decisions[2].transition  # dip-0 -> full-1
        assert refull.flush_cycles > 0
        assert refull.reclaimed_sms > 0
        grants_dip = {g.application: g.cache_sms for g in decisions[1].grants}
        grants_full = {g.application: g.cache_sms for g in decisions[2].grants}
        expected_reclaim = sum(
            max(0, grants_dip[app] - grants_full[app]) for app in grants_dip
        )
        assert refull.reclaimed_sms == expected_reclaim

    def test_mixed_tenancy_departure_flushes_the_departing_tenant(self):
        scenario = mixed_tenancy(rounds=1)
        decisions = _plan(DynamicCapacityManager(), scenario)
        shared, solo_b = decisions[1], decisions[2]
        grants = {g.application: g.cache_sms for g in shared.grants}
        # kmeans departs after the shared phase: its whole grant is
        # reclaimed; cfd's grant may grow toward the solo pool.
        assert solo_b.transition.reclaimed_sms >= grants["kmeans"]
        assert solo_b.transition.warmup_cycles > 0

    def test_static_and_dynamic_share_corun_accounting(self):
        # With equal pools, a tenancy change must cost both policies the
        # same — comparisons measure capacity adaptation, not bookkeeping.
        phase_a = ScenarioPhase(application="kmeans", compute_sm_demand=34)
        phase_b = ScenarioPhase(application="cfd", compute_sm_demand=34)
        scenario = ScenarioSpec(name="swap", phases=(phase_a, phase_b))
        static = _plan(FixedSplitPolicy(), scenario)
        dynamic = _plan(DynamicCapacityManager(), scenario)
        assert static[1].split == dynamic[1].split
        assert static[1].transition == dynamic[1].transition


class TestHysteresisEdges:
    def test_zero_idle_phase_flushes_everything_despite_hysteresis(self):
        scenario = ScenarioSpec(
            name="saturate",
            phases=(
                ScenarioPhase(application="kmeans", compute_sm_demand=24),
                ScenarioPhase(application="kmeans", compute_sm_demand=GPU.num_sms),
                ScenarioPhase(application="kmeans", compute_sm_demand=24),
            ),
        )
        decisions = _plan(DynamicCapacityManager(hysteresis_sms=4), scenario)
        lull, saturated, recover = decisions
        assert lull.split.num_cache_sms == 44
        # Zero idle: the whole allocation is handed back, hysteresis cannot
        # keep any of it, and the flush covers exactly the 44 lost SMs.
        assert saturated.split.num_cache_sms == 0
        assert saturated.split.num_gated_sms == 0
        assert saturated.transition.reclaimed_sms == 44
        assert saturated.transition.warmup_cycles == 0
        # Recovery re-warms exactly what was lost, once.
        assert recover.split.num_cache_sms == 44
        assert recover.transition.added_sms == 44
        assert recover.transition.flush_cycles == 0

    def test_back_to_back_app_changes_flush_exactly_once_each(self):
        scenario = ScenarioSpec(
            name="churn",
            phases=(
                ScenarioPhase(application="kmeans", compute_sm_demand=34),
                ScenarioPhase(application="cfd", compute_sm_demand=34),
                ScenarioPhase(application="spmv", compute_sm_demand=34),
            ),
        )
        decisions = _plan(DynamicCapacityManager(hysteresis_sms=8), scenario)
        pool = decisions[0].split.num_cache_sms
        # Each boundary flushes exactly the outgoing application's whole
        # grant (with *its* write mix) and re-warms the incoming one — no
        # double-charging, no carry-over.
        first = MODEL.flush_cost(GPU, pool, PROFILES["kmeans"])
        second = MODEL.flush_cost(GPU, pool, PROFILES["cfd"])
        assert decisions[1].transition.flushed_dirty_bytes == pytest.approx(
            first.flushed_dirty_bytes
        )
        assert decisions[2].transition.flushed_dirty_bytes == pytest.approx(
            second.flushed_dirty_bytes
        )
        for boundary in decisions[1:]:
            assert boundary.transition.reclaimed_sms == pool
            assert boundary.transition.added_sms == pool

    def test_corun_hysteresis_damps_per_resident_wiggles(self):
        # A small demand redistribution at constant total demand keeps the
        # pool; hysteresis must then also keep the per-resident slices, or
        # the redistribution pays the very transition it exists to skip.
        scenario = ScenarioSpec(
            name="wiggle-corun",
            phases=(
                ScenarioPhase(
                    residents=(Residency("kmeans", 28), Residency("cfd", 24))
                ),
                ScenarioPhase(
                    residents=(Residency("kmeans", 27), Residency("cfd", 25))
                ),
            ),
        )
        damped = _plan(DynamicCapacityManager(hysteresis_sms=2), scenario)
        reactive = _plan(DynamicCapacityManager(), scenario)
        damped_shares = [
            {g.application: g.cache_sms for g in d.grants} for d in damped
        ]
        assert damped_shares[0] == damped_shares[1]
        assert damped[1].transition.is_zero
        # Without hysteresis the proportional slices track the demand shift
        # and the boundary is charged.
        reactive_shares = [
            {g.application: g.cache_sms for g in d.grants} for d in reactive
        ]
        assert reactive_shares[0] != reactive_shares[1]
        assert not reactive[1].transition.is_zero

    def test_zero_idle_corun_phase(self):
        full = ScenarioPhase(
            residents=(Residency("kmeans", 40), Residency("cfd", 28)),
        )
        scenario = ScenarioSpec(name="full-corun", phases=(_corun_phase(), full))
        decisions = _plan(DynamicCapacityManager(hysteresis_sms=2), scenario)
        assert decisions[1].split.num_cache_sms == 0
        assert all(grant.cache_sms == 0 for grant in decisions[1].grants)


class TestCorunEngine:
    def test_corun_phase_lowers_to_one_leaf_per_resident(self, engine):
        scenario = corun_overlap(sms_a=28, sms_b=24, dip_sms_b=8, rounds=1)
        lowered = engine.lower(scenario, "Morpheus-ALL")
        for phase in lowered:
            assert len(phase.leaves) == 2
            for leaf, grant in zip(phase.leaves, phase.decision.grants):
                assert leaf.config.num_compute_sms == grant.compute_sms
                assert leaf.config.num_cache_sms == grant.cache_sms
                assert (leaf.config.morpheus is not None) == (grant.cache_sms > 0)
            with pytest.raises(ValueError, match="use .leaves"):
                phase.config

    def test_baseline_corun_lowering(self, engine):
        scenario = corun_overlap(rounds=1)
        for system in ("BL", "IBL"):
            lowered = engine.lower(scenario, system)
            for phase in lowered:
                assert len(phase.leaves) == 2
                assert all(leaf.config.num_cache_sms == 0 for leaf in phase.leaves)
                assert all(
                    leaf.config.power_gate_unused == (system == "IBL")
                    for leaf in phase.leaves
                )

    def test_corun_policy_must_return_grants(self, engine):
        class NoGrantsPolicy(FixedSplitPolicy):
            def plan(self, *args, **kwargs):
                return [
                    dataclasses.replace(decision, grants=())
                    for decision in super().plan(*args, **kwargs)
                ]

        scenario = corun_overlap(rounds=1)
        with pytest.raises(ValueError, match="per-resident grants"):
            engine.lower(scenario, "Morpheus-Basic", NoGrantsPolicy())

    def test_inconsistent_grants_rejected(self, engine):
        class SkimmingPolicy(FixedSplitPolicy):
            def plan(self, *args, **kwargs):
                decisions = super().plan(*args, **kwargs)
                return [
                    dataclasses.replace(
                        decision,
                        grants=tuple(
                            dataclasses.replace(grant, cache_sms=grant.cache_sms + 1)
                            for grant in decision.grants
                        ),
                    )
                    for decision in decisions
                ]

        scenario = corun_overlap(rounds=1)
        with pytest.raises(ValueError, match="cache grants sum"):
            engine.lower(scenario, "Morpheus-Basic", SkimmingPolicy())

    def test_single_tenant_grantless_policies_still_work(self, engine):
        # Pre-co-run policies that fill only `split` keep working on
        # single-tenant timelines: the engine synthesizes the grant.
        class LegacyPolicy(FixedSplitPolicy):
            def plan(self, *args, **kwargs):
                return [
                    dataclasses.replace(decision, grants=())
                    for decision in super().plan(*args, **kwargs)
                ]

        scenario = ScenarioSpec(
            name="legacy",
            phases=(ScenarioPhase(application="kmeans", compute_sm_demand=24),),
        )
        lowered = engine.lower(scenario, "Morpheus-Basic", LegacyPolicy())
        assert lowered[0].leaves[0].grant.application == "kmeans"
        assert lowered[0].leaves[0].grant.cache_sms == lowered[0].decision.split.num_cache_sms

    def test_corun_run_accounts_concurrent_residents(self, engine):
        scenario = corun_overlap(sms_a=28, sms_b=24, dip_sms_b=8, rounds=1)
        with using_runner(engine.runner):
            result = engine.run(scenario, "Morpheus-ALL")
        for execution in result.phases:
            assert len(execution.residents) == 2
            with pytest.raises(ValueError, match="use .residents"):
                execution.stats
            # The phase budget is retired collectively, each resident in
            # proportion to its leaf IPC, over one shared wall-clock.
            assert sum(r.instructions for r in execution.residents) == pytest.approx(
                execution.instructions
            )
            aggregate_ipc = sum(r.stats.ipc for r in execution.residents)
            assert execution.compute_cycles == pytest.approx(
                execution.instructions / aggregate_ipc
            )
        expected = scenario.total_weight * scenario.instructions_per_weight
        assert result.total_instructions == pytest.approx(expected)

    def test_corun_serial_equals_parallel(self, tmp_path):
        scenario = mixed_tenancy(rounds=1)

        def snapshot(result):
            return [
                (
                    execution.index,
                    [
                        (
                            resident.application,
                            dataclasses.asdict(resident.grant),
                            dataclasses.asdict(resident.stats),
                            resident.instructions,
                        )
                        for resident in execution.residents
                    ],
                    dataclasses.asdict(execution.decision.transition),
                    execution.compute_cycles,
                )
                for execution in result.phases
            ]

        def run(cache_dir, workers):
            runner = ExperimentRunner(cache_dir=cache_dir, max_workers=workers)
            engine = ScenarioEngine(runner=runner, fidelity=TINY_FIDELITY)
            with using_runner(runner):
                return runner, engine.run(scenario, "Morpheus-Basic")

        serial_runner, serial = run(tmp_path / "serial", 0)
        parallel_runner, parallel = run(tmp_path / "parallel", 2)
        assert snapshot(serial) == snapshot(parallel)
        assert serial.run_key == parallel.run_key
        assert serial_runner.replays == parallel_runner.replays

    def test_warm_corun_rerun_has_zero_replay_tier_misses(self, tmp_path):
        scenario = corun_overlap(rounds=2)

        def run():
            runner = ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=0)
            engine = ScenarioEngine(runner=runner, fidelity=TINY_FIDELITY)
            with using_runner(runner):
                result = engine.run(scenario, "Morpheus-Basic")
            return runner, result

        cold_runner, _ = run()
        assert cold_runner.replays > 0
        warm_runner, _ = run()
        assert warm_runner.replays == 0
        assert warm_runner.disk_cache.replay_misses == 0
        assert warm_runner.disk_cache.misses == 0


class TestCorunAnalysis:
    @pytest.fixture(scope="class")
    def corun_runs(self, tmp_path_factory):
        runner = ExperimentRunner(
            cache_dir=tmp_path_factory.mktemp("cache"), max_workers=0
        )
        engine = ScenarioEngine(runner=runner, fidelity=TINY_FIDELITY)
        scenario = corun_overlap(sms_a=28, sms_b=24, dip_sms_b=8, rounds=2)
        with using_runner(runner):
            result = engine.run(
                scenario, "Morpheus-ALL", DynamicCapacityManager(arbitration="sensitivity")
            )
            references = engine.solo_reference_ipcs(
                scenario, "Morpheus-ALL", DynamicCapacityManager(arbitration="sensitivity")
            )
        return result, references

    def test_per_app_timelines(self, corun_runs):
        result, _ = corun_runs
        timelines = per_app_timelines(result)
        assert set(timelines) == {"spmv", "cfd"}
        total_instructions = sum(t.instructions for t in timelines.values())
        assert total_instructions == pytest.approx(result.total_instructions)
        for timeline in timelines.values():
            # Both residents span every phase of this timeline.
            assert timeline.resident_cycles == pytest.approx(result.total_cycles)
            assert timeline.ipc > 0
            assert timeline.mean_compute_sms > 0

    def test_weighted_speedup_and_fairness_bounds(self, corun_runs):
        result, references = corun_runs
        speedup = weighted_speedup(result, references)
        fair = fairness(result, references)
        # Two tenants sharing one GPU: each progresses slower than alone,
        # so 0 < WS < 2 and fairness sits in (0, 1].
        assert 0 < speedup < 2
        assert 0 < fair <= 1

    def test_contention_breakdown_consistency(self, corun_runs):
        result, references = corun_runs
        breakdown = contention_breakdown(result, references)
        assert {app.application for app in breakdown.per_app} == {"spmv", "cfd"}
        assert breakdown.weighted_speedup == pytest.approx(
            sum(app.normalized_progress for app in breakdown.per_app)
        )
        progress = {app.application: app for app in breakdown.per_app}
        for app in breakdown.per_app:
            assert app.reference_ipc == references[app.application]
            # Sharing can never beat running alone (leaves only lose
            # extended-LLC capacity), but capacity-insensitive residents
            # may tie the reference exactly.
            assert app.normalized_progress <= 1
            assert app.contention_cycles >= 0
        # spmv is capacity-sensitive: its smaller arbitrated share costs it.
        assert progress["spmv"].normalized_progress < 1
        assert progress["spmv"].contention_cycles > 0

    def test_reports_render(self, corun_runs):
        result, references = corun_runs
        table = corun_table(result, references)
        assert "weighted speedup" in table and "spmv" in table and "cfd" in table
        phases = phase_table(result)
        assert "spmv" in phases and "cfd" in phases
