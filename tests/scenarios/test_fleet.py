"""Tests for the seeded fleet arrival-process scenario generator."""

from __future__ import annotations

import pytest

from repro.scenarios import SCENARIO_LIBRARY, ScenarioSpec, fleet, get_scenario


class TestFleetShape:
    def test_registered_in_library(self):
        assert SCENARIO_LIBRARY["fleet"] is fleet
        spec = get_scenario("fleet", num_phases=16, seed=9)
        assert isinstance(spec, ScenarioSpec)
        assert spec.name == "fleet"
        assert len(spec.phases) == 16

    def test_deterministic_for_a_seed(self):
        assert fleet(num_phases=200, seed=4) == fleet(num_phases=200, seed=4)
        assert (
            fleet(num_phases=200, seed=4).scenario_key()
            == fleet(num_phases=200, seed=4).scenario_key()
        )

    def test_seed_changes_the_timeline(self):
        assert fleet(num_phases=200, seed=4) != fleet(num_phases=200, seed=5)

    def test_every_phase_within_bounds(self):
        budget = 64
        spec = fleet(num_phases=300, seed=7, max_residents=2, total_sm_budget=budget)
        pool = {"spmv", "cfd", "kmeans"}
        for phase in spec.phases:
            assert 1 <= len(phase.residents) <= 2
            names = [residency.application for residency in phase.residents]
            assert len(set(names)) == len(names), "duplicate resident application"
            assert set(names) <= pool
            # Residents share the phase's quantized demand level equally.
            assert len({r.compute_sm_demand for r in phase.residents}) == 1
            assert sum(r.compute_sm_demand for r in phase.residents) <= budget
            assert phase.duration_weight == 1.0

    def test_demands_come_from_the_quantized_levels(self):
        levels = (8, 16, 24, 32)
        spec = fleet(num_phases=300, seed=7, demand_levels=levels)
        seen = {
            residency.compute_sm_demand
            for phase in spec.phases
            for residency in phase.residents
        }
        assert seen <= set(levels)
        # The diurnal envelope actually varies the level across the timeline.
        assert len(seen) > 1

    def test_collapses_to_few_distinct_phase_shapes(self):
        spec = fleet(num_phases=500, seed=3)
        distinct = {(phase.residents, phase.duration_weight) for phase in spec.phases}
        assert 0 < len(distinct) < len(spec.phases) // 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_phases": 0},
            {"applications": ()},
            {"max_residents": 0},
            {"max_residents": 4},  # only 3 distinct default applications
            {"demand_levels": ()},
            {"demand_levels": (0, 16)},
            {"diurnal_period": 0},
            # Smallest level cannot fit two residents in the budget.
            {"demand_levels": (64,), "total_sm_budget": 64, "max_residents": 2},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            fleet(**kwargs)
