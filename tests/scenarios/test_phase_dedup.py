"""Phase-signature dedup: bit-identity with the per-phase path, at fleet scale.

The dedup execution plan (``phase_dedup=True``, the default) must be an
invisible optimisation: identical per-phase results, identical cache keys,
and payloads readable by either mode.  The fleet-scale test then pins the
whole point — thousands of phases collapse to tens of signatures, every
phase is accounted for by the dedup counters, and a warm re-run touches
exactly one scenario-tier payload.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.runner import ExperimentRunner
from repro.scenarios import SCENARIO_LIBRARY, ScenarioEngine, fleet, get_scenario
from repro.telemetry import Telemetry
from repro.telemetry.report import summarize
from scenario_test_utils import TINY_FIDELITY

SYSTEM = "Morpheus-Basic"

#: Library shapes under test ("diurnal" is an alias of "ramp"); the fleet
#: shape is shrunk so the full matrix stays fast.
SHAPES = sorted(name for name in SCENARIO_LIBRARY if name != "diurnal")
SHAPE_KWARGS = {"fleet": {"num_phases": 60, "seed": 2}}


def build(name):
    return get_scenario(name, **SHAPE_KWARGS.get(name, {}))


def engine_for(tmp_path, subdir, dedup):
    runner = ExperimentRunner(cache_dir=tmp_path / subdir, max_workers=0)
    return ScenarioEngine(runner=runner, fidelity=TINY_FIDELITY, phase_dedup=dedup)


def snapshot(result) -> list:
    """A comparable rendering of one timeline run (stats + cycle accounting)."""
    return [
        (
            execution.index,
            dataclasses.asdict(execution.phase),
            dataclasses.asdict(execution.decision),
            [dataclasses.asdict(resident) for resident in execution.residents],
            execution.instructions,
            execution.compute_cycles,
        )
        for execution in result.phases
    ]


class TestDedupBitIdentity:
    @pytest.mark.parametrize("name", SHAPES)
    def test_matches_per_phase_path_on_every_library_shape(self, tmp_path, name):
        scenario = build(name)
        dedup_engine = engine_for(tmp_path, "dedup", True)
        naive_engine = engine_for(tmp_path, "naive", False)

        # Same cache key: dedup is an execution plan, not a result change.
        assert dedup_engine.run_key(scenario, SYSTEM) == naive_engine.run_key(
            scenario, SYSTEM
        )

        dedup_run = dedup_engine.run(scenario, SYSTEM)
        naive_run = naive_engine.run(scenario, SYSTEM)
        assert snapshot(dedup_run) == snapshot(naive_run)
        assert dedup_run.signatures is not None
        assert naive_run.signatures is None
        assert dedup_run.dedup_hits == len(scenario.phases) - len(dedup_run.signatures)

    def test_modes_share_persisted_payloads_both_ways(self, tmp_path):
        scenario = build("corun_overlap")

        # Dedup writes the signature layout; the per-phase mode loads it.
        cold = engine_for(tmp_path, "shared-a", True).run(scenario, SYSTEM)
        naive_engine = engine_for(tmp_path, "shared-a", False)
        warm = naive_engine.run(scenario, SYSTEM)
        assert naive_engine.runner.replays == 0
        assert warm.signatures is not None  # layout survives the round trip
        assert snapshot(warm) == snapshot(cold)

        # The per-phase mode writes the legacy layout; dedup loads it.
        cold = engine_for(tmp_path, "shared-b", False).run(scenario, SYSTEM)
        dedup_engine = engine_for(tmp_path, "shared-b", True)
        warm = dedup_engine.run(scenario, SYSTEM)
        assert dedup_engine.runner.replays == 0
        assert warm.signatures is None
        assert snapshot(warm) == snapshot(cold)


class TestFleetScale:
    def test_5k_phase_fleet_dedups_and_reloads_one_payload(self, tmp_path):
        scenario = fleet(num_phases=5000, seed=7)
        trace_dir = tmp_path / "trace"
        with Telemetry(directory=trace_dir, enabled=True):
            cold_engine = engine_for(tmp_path, "cache", True)
            cold = cold_engine.run(scenario, SYSTEM)
            warm_engine = engine_for(tmp_path, "cache", True)
            warm = warm_engine.run(scenario, SYSTEM)

        # Thousands of phases, tens of signatures.
        signatures = len(cold.signatures)
        assert 0 < signatures < 100
        assert cold.dedup_hits == 5000 - signatures
        assert len(cold.phases) == 5000

        # Warm: zero replay-tier traffic, exactly one scenario-tier payload.
        warm_cache = warm_engine.runner.disk_cache
        assert warm_engine.runner.replays == 0
        assert warm_cache.replay_misses == 0
        assert warm_cache.tier_counters()["scenario_hits"] == 1
        assert warm.signatures is not None
        assert snapshot(warm) == snapshot(cold)

        # Only the cold pass lowers phases, and its counters account for
        # every one of them.
        counters = summarize(trace_dir)["counters"]
        assert counters["scenario.dedup.hits"] == cold.dedup_hits
        assert counters["scenario.dedup.misses"] == signatures
        histograms = summarize(trace_dir)["histograms"]
        assert histograms["scenario.signature_solve_seconds"]["count"] > 0
