"""The dynamic manager's ``pool_cap_sms`` split-point knob.

The design-space search's "Morpheus split point" axis: a cap on the
dynamic manager's pooled cache-mode allocation, below the architectural
75 % cap.  The default (``None``) must reproduce the original plans bit
for bit — the knob is purely additive.
"""

from __future__ import annotations

import pytest

from repro.core.config import MorpheusConfig
from repro.gpu.config import RTX3080_CONFIG
from repro.scenarios.library import get_scenario
from repro.scenarios.policy import DynamicCapacityManager, TransitionCostModel
from repro.workloads.applications import get_application


def _plan(policy, scenario_name="mixed_tenancy"):
    scenario = get_scenario(scenario_name)
    profiles = {name: get_application(name) for name in scenario.applications}
    return policy.plan(
        scenario,
        RTX3080_CONFIG,
        MorpheusConfig(),
        profiles,
        TransitionCostModel(),
    )


def test_default_is_identical_to_the_original_behaviour():
    assert _plan(DynamicCapacityManager(pool_cap_sms=None)) == _plan(
        DynamicCapacityManager()
    )


def test_cap_limits_every_phase_pool():
    for cap in (0, 4, 12):
        decisions = _plan(DynamicCapacityManager(pool_cap_sms=cap))
        assert all(d.split.num_cache_sms <= cap for d in decisions)
        assert max(d.split.num_cache_sms for d in decisions) == min(
            cap,
            max(
                d.split.num_cache_sms
                for d in _plan(DynamicCapacityManager())
            ),
        )


def test_large_cap_is_a_no_op():
    assert _plan(DynamicCapacityManager(pool_cap_sms=68)) == _plan(
        DynamicCapacityManager()
    )


def test_negative_cap_rejected():
    with pytest.raises(ValueError, match="pool_cap_sms"):
        DynamicCapacityManager(pool_cap_sms=-1)


def test_cap_enters_the_policy_fields():
    # The scenario-tier run key hashes vars(policy); the knob must be there.
    assert "pool_cap_sms" in vars(DynamicCapacityManager(pool_cap_sms=8))
