"""Determinism and warm-cache contracts of scenario execution.

Satellite coverage for the two scenario acceptance properties: serial and
parallel timeline runs are bit-identical, and a warm re-run of a
repeated-phase timeline is served entirely from the measurement cache
(zero replay-tier misses, zero replays).
"""

from __future__ import annotations

import dataclasses

from repro.runner import ExperimentRunner, using_runner
from repro.scenarios import ScenarioEngine, bursty, corun_pair
from scenario_test_utils import TINY_FIDELITY


def _snapshot(result):
    """A comparable rendering of one timeline run."""
    return [
        (
            execution.index,
            dataclasses.asdict(execution.stats),
            dataclasses.asdict(execution.decision.transition),
            dataclasses.asdict(execution.decision.split),
            execution.instructions,
            execution.compute_cycles,
        )
        for execution in result.phases
    ]


def _run(cache_dir, max_workers: int, scenario, system="Morpheus-Basic"):
    runner = ExperimentRunner(cache_dir=cache_dir, max_workers=max_workers)
    engine = ScenarioEngine(runner=runner, fidelity=TINY_FIDELITY)
    with using_runner(runner):
        result = engine.run(scenario, system)
    return runner, result


class TestScenarioDeterminism:
    def test_serial_and_parallel_runs_are_bit_identical(self, tmp_path):
        # A co-run timeline exercises multiple applications and configs, so
        # the parallel path actually fans replays out to workers — in one
        # cross-application batch (run_leaves), not per-profile groups.
        scenario = corun_pair(rounds=2)
        serial_runner, serial = _run(tmp_path / "serial", 0, scenario)
        parallel_runner, parallel = _run(tmp_path / "parallel", 2, scenario)
        assert _snapshot(serial) == _snapshot(parallel)
        assert serial.run_key == parallel.run_key
        # Both executions replayed each distinct (application, config) leaf
        # exactly once.
        assert serial_runner.replays == parallel_runner.replays == 2

    def test_warm_rerun_has_zero_replay_tier_misses(self, tmp_path):
        # The bursty timeline repeats its lull/burst phases; the warm pass
        # must be served entirely from the measurement + stats tiers.
        scenario = bursty(bursts=2)
        cold_runner, cold = _run(tmp_path / "cache", 0, scenario)
        assert cold_runner.replays == 2  # two distinct splits, five phases

        warm_runner, warm = _run(tmp_path / "cache", 0, scenario)
        assert warm_runner.replays == 0
        assert warm_runner.disk_cache.replay_misses == 0
        assert warm_runner.disk_cache.misses == 0
        assert _snapshot(cold) == _snapshot(warm)

    def test_rescoring_scenario_leaves_never_replays(self, tmp_path):
        # An analytic re-score of a scenario (fresh runner, different MLP)
        # hits the measurement tier for every phase leaf: zero replays.
        import dataclasses as dc

        scenario = bursty(bursts=1)
        _run(tmp_path / "cache", 0, scenario)
        runner = ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=0)
        engine = ScenarioEngine(runner=runner, fidelity=TINY_FIDELITY)
        with using_runner(runner):
            lowered = engine.lower(scenario, "Morpheus-Basic")
            from repro.workloads.applications import get_application

            profile = get_application(scenario.phases[0].application)
            configs = [dc.replace(leaf.config, mlp_per_sm=64.0) for leaf in lowered]
            rescored = runner.score_many(profile, configs)
        assert len(rescored) == len(scenario.phases)
        assert runner.replays == 0
        assert runner.disk_cache.replay_misses == 0
