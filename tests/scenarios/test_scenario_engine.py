"""Tests for capacity policies, transition costs and the scenario engine."""

from __future__ import annotations

from typing import List

import pytest

from repro.core.config import MorpheusConfig
from repro.gpu.config import RTX3080_CONFIG
from repro.runner import ExperimentRunner, using_runner
from repro.scenarios import (
    CapacityPolicy,
    DynamicCapacityManager,
    FixedSplitPolicy,
    PhaseDecision,
    ScenarioEngine,
    ScenarioPhase,
    ScenarioSpec,
    TransitionCostModel,
    bursty,
    corun_pair,
    max_cache_mode_sms,
    steady,
)
from repro.systems.registry import SCENARIO_SYSTEMS, run_scenario
from repro.workloads.applications import get_application
from scenario_test_utils import TINY_FIDELITY

GPU = RTX3080_CONFIG
MORPHEUS = MorpheusConfig()
MODEL = TransitionCostModel()


def _profiles(scenario: ScenarioSpec):
    return {name: get_application(name) for name in scenario.applications}


def _plan(policy: CapacityPolicy, scenario: ScenarioSpec) -> List[PhaseDecision]:
    return policy.plan(scenario, GPU, MORPHEUS, _profiles(scenario), MODEL)


@pytest.fixture
def engine(tmp_path):
    runner = ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=0)
    return ScenarioEngine(runner=runner, fidelity=TINY_FIDELITY)


class TestTransitionCostModel:
    def test_no_cost_for_zero_sms(self):
        profile = get_application("kmeans")
        assert MODEL.flush_cost(GPU, 0, profile).is_zero
        assert MODEL.warmup_cost(GPU, 0).is_zero

    def test_flush_scales_with_reclaimed_sms(self):
        profile = get_application("kmeans")
        small = MODEL.flush_cost(GPU, 4, profile)
        large = MODEL.flush_cost(GPU, 40, profile)
        assert 0 < small.flushed_dirty_bytes < large.flushed_dirty_bytes
        assert 0 < small.flush_cycles
        # Beyond the point where the SMs' aggregate drain rate saturates
        # DRAM, more reclaimed SMs mean strictly more writeback cycles.
        assert large.flush_cycles > small.flush_cycles

    def test_dirty_fraction_defaults_to_write_fraction(self):
        profile = get_application("kmeans")
        default = MODEL.flush_cost(GPU, 8, profile)
        explicit = TransitionCostModel(dirty_fraction=profile.write_fraction).flush_cost(
            GPU, 8, profile
        )
        assert default.flushed_dirty_bytes == explicit.flushed_dirty_bytes

    def test_application_change_flushes_retained_capacity(self):
        profile = get_application("kmeans")
        unchanged = MODEL.transition(
            GPU, previous_cache_sms=40, new_cache_sms=40,
            outgoing_profile=profile, application_changed=False,
        )
        changed = MODEL.transition(
            GPU, previous_cache_sms=40, new_cache_sms=40,
            outgoing_profile=profile, application_changed=True,
        )
        assert unchanged.is_zero
        assert changed.flush_cycles > 0 and changed.warmup_cycles > 0


class TestPolicies:
    def test_fixed_split_never_transitions_on_single_app_timelines(self):
        decisions = _plan(FixedSplitPolicy(), bursty(low_sms=24, high_sms=60, bursts=2))
        worst_idle = GPU.num_sms - 60
        assert {d.split.num_cache_sms for d in decisions} == {worst_idle}
        assert all(d.transition.is_zero for d in decisions)

    def test_fixed_split_pays_the_same_app_change_flush_as_dynamic(self):
        # The outgoing application's extended-LLC contents are orphaned
        # whatever the policy; static and dynamic must account the ownership
        # change identically when their splits agree, or co-run comparisons
        # measure the bookkeeping instead of the capacity adaptation.
        scenario = corun_pair(application_a="kmeans", application_b="cfd",
                              sms_a=34, sms_b=34, rounds=1)
        static = _plan(FixedSplitPolicy(), scenario)
        dynamic = _plan(DynamicCapacityManager(), scenario)
        assert static[0].transition.is_zero
        assert not static[1].transition.is_zero
        assert static[1].split == dynamic[1].split
        assert static[1].transition == dynamic[1].transition

    def test_dynamic_tracks_idle_capacity_under_cap(self):
        scenario = steady(application="kmeans", compute_sms=10, num_phases=2)
        decisions = _plan(DynamicCapacityManager(), scenario)
        cap = max_cache_mode_sms(GPU, MORPHEUS)
        assert decisions[0].split.num_cache_sms == cap  # idle 58 > cap 51
        assert decisions[0].split.num_gated_sms == GPU.num_sms - 10 - cap

    def test_dynamic_first_phase_is_free(self):
        decisions = _plan(DynamicCapacityManager(), bursty(bursts=1))
        assert decisions[0].transition.is_zero

    def test_dynamic_charges_handback_and_regrowth(self):
        decisions = _plan(DynamicCapacityManager(), bursty(low_sms=24, high_sms=60, bursts=1))
        # lull(44 cache) -> burst(8 cache): 36 SMs handed back (flush).
        burst = decisions[1].transition
        assert burst.reclaimed_sms == 36
        assert burst.flush_cycles > 0 and burst.warmup_cycles == 0
        # burst -> lull: 36 SMs re-borrowed (warm-up).
        regrow = decisions[2].transition
        assert regrow.added_sms == 36
        assert regrow.warmup_cycles > 0 and regrow.flush_cycles == 0

    def test_dynamic_application_change_pays_even_without_resize(self):
        scenario = corun_pair(application_a="kmeans", application_b="cfd",
                              sms_a=34, sms_b=34, rounds=1)
        decisions = _plan(DynamicCapacityManager(), scenario)
        switch = decisions[1].transition
        assert decisions[0].split.num_cache_sms == decisions[1].split.num_cache_sms
        assert switch.flush_cycles > 0 and switch.warmup_cycles > 0

    def test_dynamic_hysteresis_damps_small_wiggles(self):
        # Demand easing 26 -> 24 frees two SMs; hysteresis keeps the old
        # allocation (it still fits) instead of paying a 2-SM warm-up.
        scenario = ScenarioSpec(
            name="wiggle",
            phases=(
                ScenarioPhase(application="kmeans", compute_sm_demand=26),
                ScenarioPhase(application="kmeans", compute_sm_demand=24),
            ),
        )
        damped = _plan(DynamicCapacityManager(hysteresis_sms=2), scenario)
        reactive = _plan(DynamicCapacityManager(), scenario)
        assert damped[1].split.num_cache_sms == damped[0].split.num_cache_sms
        assert damped[1].transition.is_zero
        assert reactive[1].split.num_cache_sms != reactive[0].split.num_cache_sms
        assert not reactive[1].transition.is_zero


class TestLowering:
    def test_baselines_have_no_cache_sms(self, engine):
        scenario = bursty(bursts=1)
        for system, gated_expected in (("BL", False), ("IBL", True)):
            lowered = engine.lower(scenario, system)
            for leaf in lowered:
                assert leaf.config.num_cache_sms == 0
                assert leaf.config.morpheus is None
                assert leaf.config.power_gate_unused == gated_expected
                assert leaf.config.num_compute_sms == leaf.phase.compute_sm_demand
                assert leaf.decision.transition.is_zero

    def test_morpheus_lull_phases_borrow_idle_sms(self, engine):
        lowered = engine.lower(bursty(low_sms=24, high_sms=60, bursts=1), "Morpheus-ALL")
        lull = lowered[0]
        assert lull.config.num_cache_sms == GPU.num_sms - 24
        assert lull.config.morpheus is not None
        assert lull.config.morpheus.enable_compression  # the ALL variant

    def test_unknown_system_and_oversized_demand_raise(self, engine):
        with pytest.raises(ValueError, match="unknown scenario system"):
            engine.lower(bursty(bursts=1), "IBL-4X-LLC")
        too_big = ScenarioSpec(
            name="big",
            phases=(ScenarioPhase(application="kmeans", compute_sm_demand=999),),
        )
        with pytest.raises(ValueError, match="demands"):
            engine.lower(too_big, "BL")

    def test_short_policy_plan_raises(self, engine):
        class BrokenPolicy(FixedSplitPolicy):
            def plan(self, *args, **kwargs):
                return super().plan(*args, **kwargs)[:-1]

        with pytest.raises(ValueError, match="decisions"):
            engine.lower(bursty(bursts=1), "Morpheus-Basic", BrokenPolicy())


class TestEngineRun:
    def test_repeated_phases_replay_at_most_once(self, engine):
        scenario = steady(application="kmeans", compute_sms=24, num_phases=6)
        with using_runner(engine.runner):
            result = engine.run(scenario, "Morpheus-Basic")
        assert len(result) == 6
        assert engine.runner.replays == 1  # six phases, one distinct leaf

    def test_bursty_pays_transitions_steady_does_not(self, engine):
        with using_runner(engine.runner):
            burst_run = engine.run(bursty(bursts=2), "Morpheus-ALL")
            steady_run = engine.run(steady(application="kmeans", compute_sms=24),
                                    "Morpheus-ALL")
        assert burst_run.transition_cycles > 0
        assert steady_run.transition_cycles == 0
        assert burst_run.total_cycles == pytest.approx(
            burst_run.compute_cycles + burst_run.transition_cycles
        )

    def test_instruction_accounting_follows_weights(self, engine):
        scenario = bursty(low_weight=2.0, high_weight=1.0, bursts=1)
        with using_runner(engine.runner):
            result = engine.run(scenario, "IBL")
        expected = scenario.total_weight * scenario.instructions_per_weight
        assert result.total_instructions == pytest.approx(expected)
        lull = result.phases[0]
        assert lull.instructions == pytest.approx(2.0 * scenario.instructions_per_weight)
        assert lull.compute_cycles == pytest.approx(lull.instructions / lull.stats.ipc)

    def test_run_systems_covers_baselines_and_all_variants(self, engine):
        scenario = steady(application="kmeans", compute_sms=34, num_phases=1)
        with using_runner(engine.runner):
            results = engine.run_systems(scenario)
        assert set(results) == set(SCENARIO_SYSTEMS)
        assert all(len(result) == 1 for result in results.values())

    def test_run_key_distinguishes_policies_and_systems(self, engine):
        scenario = bursty(bursts=1)
        keys = {
            engine.run_key(scenario, "Morpheus-ALL"),
            engine.run_key(scenario, "Morpheus-ALL", FixedSplitPolicy()),
            engine.run_key(scenario, "Morpheus-Basic"),
            engine.run_key(scenario, "IBL"),
        }
        assert len(keys) == 4

    def test_run_key_covers_the_energy_constants(self, engine):
        # Scenario aggregates depend on the energy model leaves are scored
        # with; run keys must not collide across energy-model variants.
        from repro.energy.components import ComponentEnergies
        from repro.energy.model import EnergyModel

        scenario = bursty(bursts=1)
        baseline = engine.run_key(scenario, "Morpheus-Basic")
        expensive = engine.runner.with_energy_model(
            EnergyModel(ComponentEnergies(dram_pj_per_byte=999.0))
        )
        sibling = ScenarioEngine(runner=expensive, fidelity=TINY_FIDELITY)
        assert sibling.run_key(scenario, "Morpheus-Basic") != baseline

    def test_corun_phases_with_identical_configs_keep_their_own_stats(self, engine):
        # kmeans and cfd phases with equal demands lower to identical
        # SimulationConfigs (the config has no application field); results
        # must still be kept per application.
        scenario = corun_pair(application_a="kmeans", application_b="cfd",
                              sms_a=34, sms_b=34, rounds=1)
        with using_runner(engine.runner):
            result = engine.run(scenario, "IBL")
        assert result.phases[0].stats.application == "kmeans"
        assert result.phases[1].stats.application == "cfd"
        assert result.phases[0].stats.ipc != result.phases[1].stats.ipc

    def test_registry_run_scenario_accepts_library_names(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=0)
        with using_runner(runner):
            result = run_scenario("Morpheus-Basic", "steady", fidelity=TINY_FIDELITY)
        assert result.scenario.name == "steady"
        assert result.system == "Morpheus-Basic"
        assert result.total_cycles > 0
