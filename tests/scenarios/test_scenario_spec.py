"""Tests for scenario specs, keys and the named-scenario library."""

from __future__ import annotations

import pytest

import repro.runner.spec as runner_spec
import repro.scenarios.spec as scenario_spec
from repro.scenarios import (
    SCENARIO_LIBRARY,
    ScenarioPhase,
    ScenarioSpec,
    bursty,
    corun_pair,
    get_scenario,
    ramp,
    steady,
)


def _phase(**overrides) -> ScenarioPhase:
    base = dict(application="kmeans", compute_sm_demand=24)
    base.update(overrides)
    return ScenarioPhase(**base)


class TestScenarioSpec:
    def test_phase_validation(self):
        with pytest.raises(ValueError):
            _phase(application="")
        with pytest.raises(ValueError):
            _phase(compute_sm_demand=0)
        with pytest.raises(ValueError):
            _phase(duration_weight=0.0)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="", phases=(_phase(),))
        with pytest.raises(ValueError):
            ScenarioSpec(name="empty", phases=())
        with pytest.raises(ValueError):
            ScenarioSpec(name="bad", phases=(_phase(),), instructions_per_weight=0)

    def test_derived_properties(self):
        spec = ScenarioSpec(
            name="mix",
            phases=(
                _phase(application="kmeans", compute_sm_demand=24, duration_weight=2.0),
                _phase(application="cfd", compute_sm_demand=60),
                _phase(application="kmeans", compute_sm_demand=34),
            ),
        )
        assert len(spec) == 3
        assert spec.total_weight == pytest.approx(4.0)
        assert spec.applications == ("kmeans", "cfd")
        assert spec.max_compute_sm_demand == 60

    def test_phases_normalized_to_tuple(self):
        spec = ScenarioSpec(name="list", phases=[_phase()])
        assert isinstance(spec.phases, tuple)


class TestScenarioKey:
    def test_key_is_stable_and_phase_sensitive(self):
        a = ScenarioSpec(name="a", phases=(_phase(),))
        same = ScenarioSpec(name="a", phases=(_phase(),))
        different = ScenarioSpec(name="a", phases=(_phase(compute_sm_demand=34),))
        assert a.scenario_key() == same.scenario_key()
        assert a.scenario_key() != different.scenario_key()

    def test_key_layers_on_leaf_schema_versions(self, monkeypatch):
        # A replay- or score-behaviour bump must invalidate scenario-level
        # aggregates too: the scenario key embeds all three versions.
        spec = ScenarioSpec(name="a", phases=(_phase(),))
        baseline = spec.scenario_key()
        monkeypatch.setattr(scenario_spec, "SCENARIO_SCHEMA_VERSION", 999)
        bumped_scenario = spec.scenario_key()
        monkeypatch.setattr(scenario_spec, "SCENARIO_SCHEMA_VERSION", 1)
        monkeypatch.setattr(scenario_spec, "REPLAY_SCHEMA_VERSION", 999)
        bumped_replay = spec.scenario_key()
        monkeypatch.setattr(scenario_spec, "REPLAY_SCHEMA_VERSION", runner_spec.REPLAY_SCHEMA_VERSION)
        monkeypatch.setattr(scenario_spec, "SCORE_SCHEMA_VERSION", 999)
        bumped_score = spec.scenario_key()
        assert len({baseline, bumped_scenario, bumped_replay, bumped_score}) == 4


class TestLibrary:
    def test_steady_repeats_one_phase(self):
        spec = steady(application="spmv", compute_sms=34, num_phases=5)
        assert len(spec) == 5
        assert {phase.compute_sm_demand for phase in spec.phases} == {34}
        assert spec.applications == ("spmv",)

    def test_bursty_alternates_and_ends_low(self):
        spec = bursty(low_sms=20, high_sms=60, bursts=3)
        assert len(spec) == 7
        demands = [phase.compute_sm_demand for phase in spec.phases]
        assert demands == [20, 60, 20, 60, 20, 60, 20]
        with pytest.raises(ValueError):
            bursty(low_sms=60, high_sms=20)

    def test_corun_pair_alternates_applications(self):
        spec = corun_pair(application_a="kmeans", application_b="cfd", rounds=2)
        apps = [phase.application for phase in spec.phases]
        assert apps == ["kmeans", "cfd", "kmeans", "cfd"]

    def test_ramp_is_symmetric(self):
        spec = ramp(low_sms=10, high_sms=60, steps=4)
        demands = [phase.compute_sm_demand for phase in spec.phases]
        assert len(demands) == 7
        assert demands == demands[::-1]
        assert demands[0] == 10 and max(demands) == 60

    def test_get_scenario_lookup(self):
        assert get_scenario("bursty", bursts=1).name == "bursty"
        assert set(SCENARIO_LIBRARY) >= {"steady", "bursty", "corun_pair", "ramp", "diurnal"}
        with pytest.raises(KeyError):
            get_scenario("nonexistent")
