"""Agent-interface contract tests and seeded-determinism checks.

These tests run no simulations: fitness comes from cheap synthetic
functions of the candidate, so they pin down the propose/observe protocol
and the strategies' deterministic trajectories in isolation.
"""

from __future__ import annotations

import random

import pytest

from repro.search import (
    AGENT_TYPES,
    GeneticAgent,
    IntAxis,
    RandomWalkAgent,
    SearchSpace,
    make_agent,
    morpheus_policy_space,
)
from repro.search.space import CategoricalAxis, FloatAxis


def _toy_space() -> SearchSpace:
    return SearchSpace(
        [
            IntAxis("pool", low=0, high=20, step=2),
            FloatAxis("frac", low=0.0, high=1.0),
            CategoricalAxis("mode", choices=("a", "b")),
        ]
    )


def _toy_fitness(candidate) -> float:
    # Smooth, deterministic, with a unique optimum at pool=20, frac=1, mode=b.
    return (
        candidate["pool"] / 20.0
        + candidate["frac"]
        + (0.5 if candidate["mode"] == "b" else 0.0)
    )


class TestAgentContract:
    @pytest.mark.parametrize("name", sorted(AGENT_TYPES))
    def test_propose_twice_without_observe_fails(self, name):
        agent = make_agent(name, _toy_space(), seed=0)
        agent.propose()
        with pytest.raises(RuntimeError, match="unobserved proposal"):
            agent.propose()

    @pytest.mark.parametrize("name", sorted(AGENT_TYPES))
    def test_observe_without_propose_fails(self, name):
        agent = make_agent(name, _toy_space(), seed=0)
        with pytest.raises(RuntimeError, match="nothing proposed"):
            agent.observe(_toy_space().sample(random.Random(0)), 1.0)

    @pytest.mark.parametrize("name", sorted(AGENT_TYPES))
    def test_observe_of_a_different_candidate_fails(self, name):
        space = _toy_space()
        agent = make_agent(name, space, seed=0)
        proposed = agent.propose()
        other = dict(proposed)
        other["pool"] = 0 if proposed["pool"] != 0 else 2
        with pytest.raises(RuntimeError, match="not the .*proposal"):
            agent.observe(other, 1.0)

    @pytest.mark.parametrize("name", sorted(AGENT_TYPES))
    def test_invalid_proposals_are_impossible(self, name):
        space = _toy_space()
        agent = make_agent(name, space, seed=3)
        for _ in range(40):
            candidate = agent.propose()
            space.validate(candidate)  # raises on any invalid proposal
            agent.observe(candidate, _toy_fitness(candidate))

    def test_best_tracking_keeps_first_best_on_ties(self):
        space = _toy_space()
        agent = RandomWalkAgent(space, seed=1)
        first = agent.propose()
        agent.observe(first, 1.0)
        second = agent.propose()
        agent.observe(second, 1.0)  # tie: must NOT displace the first best
        assert agent.best_candidate == first
        assert agent.best_fitness == 1.0

    def test_make_agent_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown agent"):
            make_agent("simulated_annealing", _toy_space())


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(AGENT_TYPES))
    def test_same_seed_same_trajectory(self, name):
        space = morpheus_policy_space()

        def trajectory(seed):
            agent = make_agent(name, space, seed=seed)
            steps = []
            for _ in range(30):
                candidate = agent.propose()
                fitness = sum(
                    float(hash(str(v)) % 97) for v in candidate.values()
                )
                agent.observe(candidate, fitness)
                steps.append(space.freeze(candidate))
            return steps

        assert trajectory(7) == trajectory(7)

    @pytest.mark.parametrize("name", sorted(AGENT_TYPES))
    def test_different_seeds_diverge(self, name):
        space = morpheus_policy_space()

        def proposals(seed):
            agent = make_agent(name, space, seed=seed)
            out = []
            for _ in range(10):
                candidate = agent.propose()
                agent.observe(candidate, 0.0)
                out.append(space.freeze(candidate))
            return out

        assert proposals(1) != proposals(2)


class TestRandomWalk:
    def test_climbs_toward_the_optimum(self):
        space = _toy_space()
        agent = RandomWalkAgent(space, seed=11)
        for _ in range(150):
            candidate = agent.propose()
            agent.observe(candidate, _toy_fitness(candidate))
        assert agent.best_fitness > 2.0  # max is 2.5; uniform mean is ~1.25

    def test_explore_probability_validation(self):
        with pytest.raises(ValueError):
            RandomWalkAgent(_toy_space(), explore_probability=1.5)


class TestGenetic:
    def test_constructor_validation(self):
        space = _toy_space()
        with pytest.raises(ValueError):
            GeneticAgent(space, population_size=1)
        with pytest.raises(ValueError):
            GeneticAgent(space, population_size=4, elite_count=4)
        with pytest.raises(ValueError):
            GeneticAgent(space, tournament_size=0)
        with pytest.raises(ValueError):
            GeneticAgent(space, mutation_probability=2.0)

    def test_elites_survive_breeding(self):
        space = _toy_space()
        agent = GeneticAgent(space, seed=5, population_size=6, elite_count=2)
        scored = []
        for _ in range(6):  # generation zero
            candidate = agent.propose()
            fitness = _toy_fitness(candidate)
            agent.observe(candidate, fitness)
            scored.append((candidate, fitness))
        ranked = sorted(scored, key=lambda entry: entry[1], reverse=True)
        next_generation = []
        for _ in range(6):
            candidate = agent.propose()
            agent.observe(candidate, _toy_fitness(candidate))
            next_generation.append(candidate)
        assert agent.generation == 1
        assert next_generation[0] == ranked[0][0]
        assert next_generation[1] == ranked[1][0]

    def test_improves_over_generations(self):
        space = _toy_space()
        agent = GeneticAgent(space, seed=9, population_size=8)
        generation_best = []
        for _ in range(5):
            best = float("-inf")
            for _ in range(8):
                candidate = agent.propose()
                fitness = _toy_fitness(candidate)
                agent.observe(candidate, fitness)
                best = max(best, fitness)
            generation_best.append(best)
        assert max(generation_best[2:]) >= generation_best[0]
        assert agent.best_fitness > 1.8
