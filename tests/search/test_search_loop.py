"""Simulation-backed search tests: determinism, cache contracts, telemetry.

The satellite acceptance properties for ``repro/search``: a fixed-seed
search replays the exact same trajectory through a fresh runner, a warm
search performs **zero replay-tier misses** (score-tier-only), the envelope
problem never touches the replay tier after its one measurement fetch, and
every step is logged through the telemetry layer.
"""

from __future__ import annotations

import math

import pytest

from fidelity_utils import TINY_FIDELITY
from repro.runner import ExperimentRunner
from repro.search import (
    EnvelopeSearchProblem,
    GeneticAgent,
    RandomWalkAgent,
    ScenarioSearchProblem,
    run_search,
)
from repro.telemetry import Telemetry
from repro.telemetry.schema import iter_records, validate_directory

STEPS = 16


def _problem(cache_dir, **kwargs) -> ScenarioSearchProblem:
    runner = ExperimentRunner(cache_dir=str(cache_dir), max_workers=0)
    return ScenarioSearchProblem(runner=runner, fidelity=TINY_FIDELITY, **kwargs)


def _trajectory(result):
    return [(step.candidate, step.fitness) for step in result.steps]


class TestScenarioSearch:
    def test_fixed_seed_trajectories_are_deterministic(self, tmp_path):
        cold = _problem(tmp_path / "cache")
        cold_result = run_search(cold, GeneticAgent(cold.space, seed=7), STEPS)

        warm = _problem(tmp_path / "cache")  # fresh runner, same cache dir
        warm_result = run_search(warm, GeneticAgent(warm.space, seed=7), STEPS)

        assert _trajectory(cold_result) == _trajectory(warm_result)
        assert cold_result.best_candidate == warm_result.best_candidate
        assert cold_result.best_fitness == warm_result.best_fitness

    def test_warm_search_has_zero_replay_tier_misses(self, tmp_path):
        cold = _problem(tmp_path / "cache")
        run_search(cold, RandomWalkAgent(cold.space, seed=3), STEPS)
        assert cold.runner.replays > 0  # the cold pass actually paid

        warm = _problem(tmp_path / "cache")
        result = run_search(warm, RandomWalkAgent(warm.space, seed=3), STEPS)
        assert warm.runner.replays == 0
        assert warm.runner.disk_cache.replay_misses == 0
        assert math.isfinite(result.best_fitness)

    def test_baseline_is_the_hand_tuned_default(self, tmp_path):
        problem = _problem(tmp_path / "cache")
        baseline = problem.baseline()
        assert baseline.candidate == {}
        assert math.isfinite(baseline.fitness) and baseline.fitness > 0
        # The references are the default policy's solo IPCs, so the baseline
        # fitness is exactly the hand-tuned configuration's weighted speedup.
        assert baseline.fitness == pytest.approx(
            baseline.metrics["weighted_speedup"]
        )

    def test_policy_lowering(self, tmp_path):
        problem = _problem(tmp_path / "cache")
        candidate = {
            "pool_cap_sms": 12,
            "hysteresis_sms": 4,
            "arbitration": "sensitivity",
            "predictor": "perfect",
            "dirty_fraction": 0.25,
            "warmup_fill_fraction": 0.5,
            "flush_bandwidth_gbps_per_sm": 20.0,
        }
        policy = problem.policy_for(candidate)
        assert policy.pool_cap_sms == 12
        assert policy.hysteresis_sms == 4
        assert policy.arbitration == "sensitivity"
        model = problem.transition_model_for(candidate)
        assert model.dirty_fraction == 0.25
        assert model.warmup_fill_fraction == 0.5
        assert model.flush_bandwidth_gbps_per_sm == 20.0

    def test_shared_memo_makes_repeat_searches_free(self, tmp_path):
        problem = _problem(tmp_path / "cache")
        memo = {}
        first = run_search(
            problem, RandomWalkAgent(problem.space, seed=5), STEPS, memo=memo
        )
        second = run_search(
            problem, RandomWalkAgent(problem.space, seed=5), STEPS, memo=memo
        )
        assert first.evaluations > 0
        assert second.evaluations == 0
        assert second.memo_hits == STEPS
        assert second.memo_hit_rate == 1.0

    def test_run_search_rejects_nonpositive_steps(self, tmp_path):
        problem = _problem(tmp_path / "cache")
        with pytest.raises(ValueError):
            run_search(problem, RandomWalkAgent(problem.space, seed=0), 0)

    def test_convergence_is_monotone(self, tmp_path):
        problem = _problem(tmp_path / "cache")
        result = run_search(problem, GeneticAgent(problem.space, seed=2), STEPS)
        trace = result.convergence()
        assert len(trace) == STEPS
        assert all(b >= a for a, b in zip(trace, trace[1:]))
        assert trace[-1] == result.best_fitness

    def test_result_report_is_jsonable(self, tmp_path):
        import json

        problem = _problem(tmp_path / "cache")
        baseline = problem.baseline()
        result = run_search(
            problem, RandomWalkAgent(problem.space, seed=1), 4, baseline=baseline
        )
        payload = json.loads(json.dumps(result.to_jsonable()))
        assert payload["agent"] == "random_walk"
        assert payload["baseline_fitness"] == baseline.fitness
        assert len(payload["convergence"]) == 4


class TestEnvelopeSearch:
    def test_score_tier_only_after_the_measurement_fetch(self, tmp_path):
        runner = ExperimentRunner(cache_dir=str(tmp_path / "cache"), max_workers=0)
        problem = EnvelopeSearchProblem(runner=runner, fidelity=TINY_FIDELITY)
        baseline = problem.baseline()  # pays the single replay
        replays_after_baseline = runner.replays
        result = run_search(
            problem, RandomWalkAgent(problem.space, seed=4), 25, baseline=baseline
        )
        assert runner.replays == replays_after_baseline
        assert result.best_fitness >= baseline.fitness

    def test_budget_overrun_is_penalized(self, tmp_path):
        runner = ExperimentRunner(cache_dir=str(tmp_path / "cache"), max_workers=0)
        problem = EnvelopeSearchProblem(
            runner=runner, fidelity=TINY_FIDELITY, budget=2.2, penalty=2.0
        )
        greedy = {
            "dram_bandwidth_share": 1.0,
            "llc_bandwidth_share": 1.0,
            "noc_bandwidth_share": 1.0,
        }
        evaluation = problem.evaluate(greedy)
        assert evaluation.metrics["budget_overrun"] == pytest.approx(0.8)
        assert evaluation.fitness == pytest.approx(
            evaluation.metrics["ipc"] - 2.0 * 0.8
        )

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            EnvelopeSearchProblem(budget=0.0)
        with pytest.raises(ValueError):
            EnvelopeSearchProblem(penalty=-1.0)


class TestTelemetryIntegration:
    def test_every_step_emits_a_span_and_the_trace_validates(self, tmp_path):
        trace_dir = tmp_path / "trace"
        with Telemetry(directory=trace_dir, enabled=True):
            problem = _problem(tmp_path / "cache")
            run_search(problem, RandomWalkAgent(problem.space, seed=6), 5)
        files, errors = validate_directory(trace_dir)
        assert files > 0 and not errors
        spans = [
            record
            for path in sorted(trace_dir.glob("events-*.jsonl"))
            for _, record in iter_records(path)
            if record.get("type") == "span" and record.get("name") == "search.step"
        ]
        assert len(spans) == 5
        assert {span["attrs"]["agent"] for span in spans} == {"random_walk"}
        assert sorted(span["attrs"]["step"] for span in spans) == list(range(5))
