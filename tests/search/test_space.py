"""Unit tests for the search-space axes and genetic primitives."""

from __future__ import annotations

import random

import pytest

from repro.search import (
    CategoricalAxis,
    FloatAxis,
    IntAxis,
    SearchSpace,
    envelope_space,
    morpheus_policy_space,
)


class TestIntAxis:
    def test_sample_stays_on_grid(self):
        axis = IntAxis("pool", low=4, high=48, step=4)
        rng = random.Random(0)
        for _ in range(200):
            value = axis.sample(rng)
            axis.validate(value)
            assert 4 <= value <= 48 and (value - 4) % 4 == 0

    def test_mutate_changes_value_and_stays_valid(self):
        axis = IntAxis("pool", low=0, high=8, step=2)
        rng = random.Random(1)
        for value in range(0, 10, 2):
            for _ in range(50):
                moved = axis.mutate(value, rng)
                axis.validate(moved)
                assert moved != value

    def test_single_value_axis(self):
        axis = IntAxis("only", low=3, high=3)
        assert axis.mutate(3, random.Random(0)) == 3

    def test_validation_errors(self):
        axis = IntAxis("pool", low=4, high=48, step=4)
        with pytest.raises(ValueError):
            axis.validate(5)  # off grid
        with pytest.raises(ValueError):
            axis.validate(52)  # out of range
        with pytest.raises(ValueError):
            axis.validate(True)  # bools are not ints here
        with pytest.raises(ValueError):
            axis.validate(8.0)  # floats rejected

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            IntAxis("bad", low=10, high=4)
        with pytest.raises(ValueError):
            IntAxis("bad", low=0, high=10, step=3)  # high off the step grid
        with pytest.raises(ValueError):
            IntAxis("bad", low=0, high=10, step=0)


class TestFloatAxis:
    def test_sample_and_mutate_stay_in_interval(self):
        axis = FloatAxis("share", low=0.2, high=1.0)
        rng = random.Random(2)
        for _ in range(200):
            value = axis.sample(rng)
            assert 0.2 <= value <= 1.0
            moved = axis.mutate(value, rng)
            assert 0.2 <= moved <= 1.0

    def test_validation_errors(self):
        axis = FloatAxis("share", low=0.0, high=1.0)
        with pytest.raises(ValueError):
            axis.validate(1.5)
        with pytest.raises(ValueError):
            axis.validate("0.5")
        with pytest.raises(ValueError):
            FloatAxis("bad", low=1.0, high=1.0)


class TestCategoricalAxis:
    def test_mutate_picks_a_different_choice(self):
        axis = CategoricalAxis("mode", choices=("a", "b", "c"))
        rng = random.Random(3)
        for _ in range(60):
            assert axis.mutate("a", rng) in ("b", "c")

    def test_single_choice_is_fixed_point(self):
        axis = CategoricalAxis("mode", choices=("only",))
        assert axis.mutate("only", random.Random(0)) == "only"

    def test_validation(self):
        axis = CategoricalAxis("mode", choices=("a", "b"))
        with pytest.raises(ValueError):
            axis.validate("z")
        with pytest.raises(ValueError):
            CategoricalAxis("bad", choices=())
        with pytest.raises(ValueError):
            CategoricalAxis("bad", choices=("a", "a"))


class TestSearchSpace:
    def _space(self) -> SearchSpace:
        return SearchSpace(
            [
                IntAxis("pool", low=4, high=16, step=4),
                FloatAxis("frac", low=0.0, high=1.0),
                CategoricalAxis("mode", choices=("x", "y")),
            ]
        )

    def test_construction_errors(self):
        with pytest.raises(ValueError):
            SearchSpace([])
        with pytest.raises(ValueError):
            SearchSpace([IntAxis("a", 0, 1), IntAxis("a", 0, 1)])

    def test_sample_is_deterministic_under_a_seed(self):
        space = self._space()
        first = [space.sample(random.Random(9)) for _ in range(5)]
        second = [space.sample(random.Random(9)) for _ in range(5)]
        assert first == second

    def test_validate_rejects_missing_and_unknown_axes(self):
        space = self._space()
        candidate = space.sample(random.Random(0))
        with pytest.raises(ValueError, match="missing"):
            space.validate({k: v for k, v in candidate.items() if k != "pool"})
        with pytest.raises(ValueError, match="unknown"):
            space.validate({**candidate, "extra": 1})

    def test_mutate_changes_at_least_one_axis(self):
        space = self._space()
        rng = random.Random(4)
        candidate = space.sample(rng)
        for _ in range(50):
            mutated = space.mutate(candidate, rng)
            space.validate(mutated)
            assert mutated != candidate

    def test_crossover_inherits_every_gene_from_a_parent(self):
        space = self._space()
        rng = random.Random(5)
        first = space.sample(rng)
        second = space.sample(rng)
        for _ in range(30):
            child = space.crossover(first, second, rng)
            space.validate(child)
            for name in space.names:
                assert child[name] in (first[name], second[name])

    def test_freeze_is_axis_ordered_and_hashable(self):
        space = self._space()
        candidate = space.sample(random.Random(6))
        frozen = space.freeze(candidate)
        assert [name for name, _ in frozen] == list(space.names)
        assert frozen == space.freeze(dict(reversed(list(candidate.items()))))
        assert hash(frozen) == hash(space.freeze(candidate))

    def test_axis_lookup(self):
        space = self._space()
        assert space.axis("pool").name == "pool"
        with pytest.raises(KeyError):
            space.axis("nope")


class TestDefaultSpaces:
    def test_morpheus_policy_space_axes(self):
        space = morpheus_policy_space()
        assert set(space.names) == {
            "pool_cap_sms",
            "hysteresis_sms",
            "arbitration",
            "predictor",
            "dirty_fraction",
            "warmup_fill_fraction",
            "flush_bandwidth_gbps_per_sm",
        }
        # The split-point axis must stay under the architectural cap.
        pool = space.axis("pool_cap_sms")
        assert pool.high <= 51  # 75% of the RTX 3080's 68 SMs

    def test_envelope_space_axes(self):
        space = envelope_space()
        assert set(space.names) == {
            "dram_bandwidth_share",
            "llc_bandwidth_share",
            "noc_bandwidth_share",
        }
