"""Bit-identity parity suite for the vectorized batch scorer.

The contract under test: for any grid of score-tier parameter variants
(power gating, peak warp IPC, MLP, system label, resource envelope) over one
replay measurement, :meth:`PerformanceModel.score_batch` — and every
:class:`~repro.sim.vector_model.MeasurementScorer` fast path — produces
``SimulationStats`` **bit-identical** to calling the scalar
:meth:`PerformanceModel.score` per point.  Equality is asserted on
``dataclasses.asdict``, i.e. exact float equality over every field including
the per-limit roofline dict and the energy breakdown.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.core.config import MorpheusConfig
from repro.energy.components import ComponentEnergies
from repro.energy.model import EnergyModel
from repro.gpu.config import RTX3080_CONFIG
from repro.sim import vector_model
from repro.sim.performance_model import PerformanceModel, ResourceEnvelope
from repro.sim.simulator import GPUSimulator, SCORE_FIELDS, SimulationConfig
from repro.sim.vector_model import MIN_VECTOR_BATCH, MeasurementScorer, have_numpy
from repro.workloads.applications import get_application

#: Replay-side baseline the variants are scored against (Morpheus carries
#: an extended-LLC limit row; the plain config drops it).
MORPHEUS_CONFIG = SimulationConfig(
    gpu=RTX3080_CONFIG,
    morpheus=MorpheusConfig(),
    num_compute_sms=20,
    num_cache_sms=8,
    power_gate_unused=True,
    capacity_scale=1.0 / 64.0,
    trace_accesses=800,
    warmup_accesses=200,
    system_name="batch-test",
    seed=1,
)

PLAIN_CONFIG = SimulationConfig(
    gpu=RTX3080_CONFIG,
    num_compute_sms=34,
    power_gate_unused=False,
    capacity_scale=1.0 / 64.0,
    trace_accesses=800,
    warmup_accesses=200,
    system_name="batch-test-plain",
    seed=1,
)


def _random_variants(config: SimulationConfig, count: int, seed: int = 1234):
    """``count`` configs perturbing every SCORE_FIELDS dimension at random."""
    rng = random.Random(seed)
    variants = []
    for index in range(count):
        envelope = ResourceEnvelope(
            dram_bandwidth_share=rng.uniform(0.1, 1.0),
            llc_bandwidth_share=rng.uniform(0.1, 1.0),
            noc_bandwidth_share=rng.uniform(0.1, 1.0),
        )
        variants.append(
            dataclasses.replace(
                config,
                power_gate_unused=rng.random() < 0.5,
                peak_warp_ipc_per_sm=rng.choice((2.0, 4.0, 6.0)),
                mlp_per_sm=rng.choice((80.0, 320.0, 480.0)),
                system_name=f"variant-{index % 3}",
                envelope=envelope if rng.random() < 0.8 else config.envelope,
            )
        )
    return variants


def _assert_identical(actual, expected):
    assert len(actual) == len(expected)
    for got, want in zip(actual, expected):
        assert dataclasses.asdict(got) == dataclasses.asdict(want)


@pytest.fixture(scope="module")
def kmeans():
    return get_application("kmeans")


@pytest.fixture(scope="module")
def morpheus_measurement(kmeans):
    return GPUSimulator(MORPHEUS_CONFIG).replay(kmeans)


@pytest.fixture(scope="module")
def plain_measurement(kmeans):
    return GPUSimulator(PLAIN_CONFIG).replay(kmeans)


class TestBatchParity:
    def test_randomized_grid_matches_scalar_bit_for_bit(
        self, kmeans, morpheus_measurement
    ):
        assert have_numpy(), "container ships numpy; the vector path must be live"
        model = PerformanceModel()
        variants = _random_variants(MORPHEUS_CONFIG, 96)
        expected = [
            model.score(kmeans, config, morpheus_measurement) for config in variants
        ]
        actual = model.score_batch(kmeans, variants, morpheus_measurement)
        _assert_identical(actual, expected)

    def test_plain_config_grid_has_no_extended_row_and_matches(
        self, kmeans, plain_measurement
    ):
        model = PerformanceModel()
        variants = _random_variants(PLAIN_CONFIG, 32, seed=99)
        expected = [
            model.score(kmeans, config, plain_measurement) for config in variants
        ]
        actual = model.score_batch(kmeans, variants, plain_measurement)
        _assert_identical(actual, expected)
        for stats in actual:
            assert "extended_llc_bandwidth" not in stats.limits

    def test_envelope_only_sweep_matches_scalar_bit_for_bit(
        self, kmeans, plain_measurement
    ):
        # The single-config sweep shape — constant system, constant
        # gating, no extended tier — takes the elided construction fast
        # path; it must stay bit-identical to the scalar loop too.
        model = PerformanceModel()
        rng = random.Random(7)
        variants = [
            dataclasses.replace(
                PLAIN_CONFIG,
                envelope=ResourceEnvelope(
                    dram_bandwidth_share=rng.uniform(0.1, 1.0),
                    llc_bandwidth_share=rng.uniform(0.1, 1.0),
                    noc_bandwidth_share=rng.uniform(0.1, 1.0),
                ),
            )
            for _ in range(64)
        ]
        expected = [
            model.score(kmeans, config, plain_measurement) for config in variants
        ]
        actual = model.score_batch(kmeans, variants, plain_measurement)
        _assert_identical(actual, expected)

    def test_every_score_field_varies_somewhere_in_the_grid(self):
        # Guard against the generator silently degenerating: each of the
        # five score-tier dimensions must actually take >1 value.
        variants = _random_variants(MORPHEUS_CONFIG, 96)
        for field in SCORE_FIELDS:
            values = {repr(getattr(config, field)) for config in variants}
            assert len(values) > 1, f"grid never varies score field {field!r}"

    def test_small_batch_uses_scalar_fallback_identically(
        self, kmeans, morpheus_measurement
    ):
        model = PerformanceModel()
        variants = _random_variants(MORPHEUS_CONFIG, MIN_VECTOR_BATCH - 1)
        expected = [
            model.score(kmeans, config, morpheus_measurement) for config in variants
        ]
        _assert_identical(
            model.score_batch(kmeans, variants, morpheus_measurement), expected
        )

    def test_empty_batch(self, kmeans, morpheus_measurement):
        assert PerformanceModel().score_batch(kmeans, [], morpheus_measurement) == []

    def test_validate_rejects_replay_mismatch(self, kmeans, morpheus_measurement):
        model = PerformanceModel()
        mismatched = dataclasses.replace(MORPHEUS_CONFIG, trace_accesses=801)
        with pytest.raises(ValueError, match="replay"):
            model.score_batch(
                kmeans, [MORPHEUS_CONFIG, mismatched], morpheus_measurement
            )


class TestNumpyFallback:
    def test_batch_without_numpy_matches_vectorized(
        self, kmeans, morpheus_measurement, monkeypatch
    ):
        model = PerformanceModel()
        variants = _random_variants(MORPHEUS_CONFIG, 24, seed=7)
        vectorized = model.score_batch(kmeans, variants, morpheus_measurement)
        monkeypatch.setattr(vector_model, "_np", None)
        assert not have_numpy()
        fallback = model.score_batch(kmeans, variants, morpheus_measurement)
        _assert_identical(fallback, vectorized)

    def test_require_numpy_error_mentions_install(self, monkeypatch):
        monkeypatch.setattr(vector_model, "_np", None)
        with pytest.raises(RuntimeError, match="numpy"):
            vector_model.require_numpy()

    def test_require_numpy_passes_when_present(self):
        vector_model.require_numpy()


class TestScorerFastPaths:
    def test_score_envelope_matches_scalar_score(self, kmeans, morpheus_measurement):
        model = PerformanceModel()
        scorer = model.scorer(kmeans, MORPHEUS_CONFIG, morpheus_measurement)
        envelope = ResourceEnvelope(
            dram_bandwidth_share=0.375,
            llc_bandwidth_share=0.625,
            noc_bandwidth_share=0.5,
        )
        expected = model.score(
            kmeans,
            dataclasses.replace(MORPHEUS_CONFIG, envelope=envelope),
            morpheus_measurement,
        )
        actual = scorer.score_envelope(envelope)
        assert dataclasses.asdict(actual) == dataclasses.asdict(expected)

    def test_score_config_matches_scalar_score(self, kmeans, morpheus_measurement):
        model = PerformanceModel()
        scorer = model.scorer(kmeans, MORPHEUS_CONFIG, morpheus_measurement)
        variant = dataclasses.replace(
            MORPHEUS_CONFIG,
            power_gate_unused=False,
            mlp_per_sm=480.0,
            system_name="one-off",
        )
        expected = model.score(kmeans, variant, morpheus_measurement)
        assert dataclasses.asdict(scorer.score_config(variant)) == dataclasses.asdict(
            expected
        )

    def test_matches_replay_guard(self, kmeans, morpheus_measurement):
        scorer = MeasurementScorer(kmeans, MORPHEUS_CONFIG, morpheus_measurement)
        assert scorer.matches_replay(MORPHEUS_CONFIG)
        # Score-tier perturbations keep the replay parameters intact.
        assert scorer.matches_replay(
            dataclasses.replace(MORPHEUS_CONFIG, mlp_per_sm=80.0)
        )
        assert not scorer.matches_replay(
            dataclasses.replace(MORPHEUS_CONFIG, seed=2)
        )
        assert not scorer.matches_replay(
            dataclasses.replace(MORPHEUS_CONFIG, replay_mode="analytic")
        )

    def test_energy_batch_matches_per_model_scoring(
        self, kmeans, morpheus_measurement
    ):
        energies_grid = [
            ComponentEnergies(),
            ComponentEnergies(dram_pj_per_byte=25.0),
            ComponentEnergies(base_static_watts=40.0),
        ]
        scorer = MeasurementScorer(kmeans, MORPHEUS_CONFIG, morpheus_measurement)
        batched = scorer.score_energy_batch(
            MORPHEUS_CONFIG, [EnergyModel(energies) for energies in energies_grid]
        )
        expected = [
            PerformanceModel(EnergyModel(energies)).score(
                kmeans, MORPHEUS_CONFIG, morpheus_measurement
            )
            for energies in energies_grid
        ]
        _assert_identical(batched, expected)
