"""Core tracer/metrics contracts: off by default, JSONL sink, schema validity."""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.telemetry import (
    NULL_SPAN,
    TELEMETRY_DIR_ENV,
    TELEMETRY_ENV,
    TELEMETRY_SCHEMA_VERSION,
    Telemetry,
    telemetry,
)
from repro.telemetry.schema import validate_directory, validate_record


def _records(directory: Path):
    records = []
    for path in sorted(directory.glob("events-*.jsonl")):
        with path.open() as handle:
            records.extend(json.loads(line) for line in handle)
    return records


class TestDisabled:
    def test_disabled_by_default(self, monkeypatch, tmp_path):
        monkeypatch.delenv(TELEMETRY_ENV, raising=False)
        tel = Telemetry(directory=tmp_path)
        assert not tel.enabled

    def test_disabled_span_is_the_shared_null_span(self, tmp_path):
        tel = Telemetry(directory=tmp_path, enabled=False)
        span = tel.span("anything", key="value")
        assert span is NULL_SPAN
        with span as entered:
            entered.set(more="attrs")

    def test_disabled_writes_nothing(self, tmp_path):
        tel = Telemetry(directory=tmp_path, enabled=False)
        with tel.span("stage"):
            pass
        tel.count("counter")
        tel.observe("histogram", 1.0)
        tel.event("event")
        tel.flush()
        assert list(tmp_path.glob("events-*.jsonl")) == []


class TestEnabled:
    def test_meta_line_first_and_schema_stamped(self, tmp_path):
        tel = Telemetry(directory=tmp_path, enabled=True)
        tel.event("marker")
        tel.flush()
        records = _records(tmp_path)
        assert records[0]["type"] == "meta"
        assert records[0]["schema"] == TELEMETRY_SCHEMA_VERSION

    def test_span_nesting_records_parent(self, tmp_path):
        tel = Telemetry(directory=tmp_path, enabled=True)
        with tel.span("outer") as outer:
            with tel.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        tel.flush()
        spans = {r["name"]: r for r in _records(tmp_path) if r["type"] == "span"}
        assert spans["inner"]["parent_id"] == spans["outer"]["span_id"]
        assert spans["outer"]["parent_id"] is None
        assert spans["outer"]["dur"] >= spans["inner"]["dur"] >= 0.0

    def test_span_attrs_and_error_marking(self, tmp_path):
        tel = Telemetry(directory=tmp_path, enabled=True)
        try:
            with tel.span("failing", app="kmeans") as span:
                span.set(extra=1)
                raise ValueError("boom")
        except ValueError:
            pass
        tel.flush()
        (span_record,) = [r for r in _records(tmp_path) if r["type"] == "span"]
        assert span_record["attrs"] == {
            "app": "kmeans",
            "extra": 1,
            "error": "ValueError",
        }

    def test_metrics_snapshots_are_cumulative_with_seq(self, tmp_path):
        tel = Telemetry(directory=tmp_path, enabled=True)
        tel.count("jobs")
        tel.gauge("depth", 3)
        tel.observe("latency", 0.5)
        tel.flush()
        tel.count("jobs", 2)
        tel.observe("latency", 1.5)
        tel.flush()
        snapshots = [r for r in _records(tmp_path) if r["type"] == "metrics"]
        assert [s["seq"] for s in snapshots] == [1, 2]
        last = snapshots[-1]
        assert last["counters"]["jobs"] == 3
        assert last["gauges"]["depth"] == 3
        histogram = last["histograms"]["latency"]
        assert histogram["count"] == 2
        assert histogram["values"] == [0.5, 1.5]
        assert histogram["min"] == 0.5 and histogram["max"] == 1.5

    def test_emitted_files_pass_schema_validation(self, tmp_path):
        tel = Telemetry(directory=tmp_path, enabled=True)
        with tel.span("stage", n=1):
            tel.event("edge", job_id="j1")
        tel.count("c")
        tel.flush()
        files, errors = validate_directory(tmp_path)
        assert files == 1
        assert errors == []

    def test_fork_reset_drops_inherited_state(self, tmp_path):
        tel = Telemetry(directory=tmp_path, enabled=True)
        tel.count("inherited")
        tel.event("inherited-event")
        tel._reset_after_fork()
        tel.flush()
        records = _records(tmp_path)
        # Only a fresh meta line: the parent's buffered event and counter
        # must not be re-emitted by the child.
        assert all(r["type"] == "meta" for r in records)


class TestScoping:
    def test_context_installs_and_restores_active_instance(self, tmp_path):
        before = telemetry()
        with Telemetry(directory=tmp_path, enabled=True) as tel:
            assert telemetry() is tel
        assert telemetry() is before

    def test_context_exports_env_for_child_processes(self, monkeypatch, tmp_path):
        monkeypatch.delenv(TELEMETRY_ENV, raising=False)
        monkeypatch.delenv(TELEMETRY_DIR_ENV, raising=False)
        with Telemetry(directory=tmp_path, enabled=True):
            assert os.environ[TELEMETRY_ENV] == "1"
            assert os.environ[TELEMETRY_DIR_ENV] == str(tmp_path)
        assert TELEMETRY_ENV not in os.environ
        assert TELEMETRY_DIR_ENV not in os.environ

    def test_env_enables_the_default_instance(self, monkeypatch, tmp_path):
        monkeypatch.setenv(TELEMETRY_ENV, "1")
        monkeypatch.setenv(TELEMETRY_DIR_ENV, str(tmp_path))
        tel = Telemetry()
        assert tel.enabled
        assert tel.directory == tmp_path


class TestSchemaValidator:
    def test_rejects_unknown_type_and_missing_fields(self):
        assert validate_record({"type": "mystery"}) != []
        assert validate_record({"type": "span", "name": "x"}) != []
        assert validate_record([1, 2]) != []

    def test_rejects_wrong_schema_version(self):
        errors = validate_record(
            {
                "type": "meta",
                "schema": TELEMETRY_SCHEMA_VERSION + 1,
                "pid": 1,
                "host": "h",
                "ts": 0.0,
            }
        )
        assert any("schema" in error for error in errors)

    def test_empty_directory_is_an_error(self, tmp_path):
        files, errors = validate_directory(tmp_path)
        assert files == 0
        assert errors
