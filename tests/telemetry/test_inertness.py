"""Telemetry is provably inert: tracing a run never changes its results.

The acceptance property of the observability layer: enabling
``REPRO_TELEMETRY=1`` (or an active :class:`~repro.telemetry.Telemetry`)
must not change any ``replay_key``/``score_key``/``run_key`` or any emitted
stat bit-for-bit — across plan mode, scenario mode and service mode.  Each
test runs the same workload twice into separate caches, once untraced and
once traced, and asserts identical stats *and* identical cache entry sets
(the file names are the content keys, so equal sets prove no telemetry
knob entered a key).
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from repro.runner import ExperimentRunner, ExperimentSpec, using_runner
from repro.runner.queue import InProcessQueue
from repro.runner.service import DistributedBackend, ExperimentService
from repro.scenarios import ScenarioEngine, corun_pair
from repro.telemetry import Telemetry
from fidelity_utils import TINY_FIDELITY

SPEC = ExperimentSpec(
    systems=("BL", "Morpheus-Basic"),
    applications=("spmv",),
    fidelity=TINY_FIDELITY,
)


def _plan_snapshot(result):
    return [
        (dataclasses.asdict(cell), dataclasses.asdict(stats))
        for cell, stats in result
    ]


def _scenario_snapshot(result):
    return [
        (
            execution.index,
            dataclasses.asdict(execution.stats),
            dataclasses.asdict(execution.decision.transition),
            dataclasses.asdict(execution.decision.split),
            execution.instructions,
            execution.compute_cycles,
        )
        for execution in result.phases
    ]


def _cache_entries(cache_dir) -> list:
    """Every cache tier file's relative path — the content keys on disk.

    Only the result tiers are compared: a FileQueue under
    ``<cache_dir>/queue`` (the env-selected service backend) is transport,
    not keyed results.
    """
    root = Path(cache_dir)
    return sorted(
        str(p.relative_to(root))
        for tier in ("measurements", "stats", "scenarios")
        for p in (root / tier).rglob("*.json")
        if (root / tier).is_dir()
    )


def _service_runner(cache_dir) -> ExperimentRunner:
    """A service-backend runner draining an in-process queue inline."""
    runner = ExperimentRunner(cache_dir=cache_dir, max_workers=2, backend="service")
    service = ExperimentService(
        cache_dir=runner.cache_dir,
        queue=InProcessQueue(),
        spawn_workers=False,
        num_workers=2,
    )
    runner._service = DistributedBackend(service)
    return runner


class TestPlanInertness:
    def test_traced_plan_is_bit_identical_to_untraced(self, tmp_path):
        # Explicitly scope telemetry off (CI runs the suite with
        # REPRO_TELEMETRY=1, and this run must really be untraced).
        with Telemetry(enabled=False):
            plain = ExperimentRunner(cache_dir=tmp_path / "off", max_workers=0)
            untraced = plain.run_plan(SPEC)

        trace_dir = tmp_path / "trace"
        with Telemetry(directory=trace_dir, enabled=True):
            traced_runner = ExperimentRunner(cache_dir=tmp_path / "on", max_workers=0)
            traced = traced_runner.run_plan(SPEC)

        assert _plan_snapshot(untraced) == _plan_snapshot(traced)
        assert _cache_entries(tmp_path / "off") == _cache_entries(tmp_path / "on")
        # The traced run actually traced; the untraced one left no trace.
        assert list(trace_dir.glob("events-*.jsonl"))

    def test_untraced_run_writes_no_trace_files(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        with Telemetry(enabled=False):
            runner = ExperimentRunner(cache_dir=tmp_path / "cache", max_workers=0)
            runner.run_plan(SPEC)
        assert not list(tmp_path.rglob("events-*.jsonl"))


class TestScenarioInertness:
    def test_traced_scenario_is_bit_identical_to_untraced(self, tmp_path):
        scenario = corun_pair(rounds=2)

        with Telemetry(enabled=False):
            plain = ExperimentRunner(cache_dir=tmp_path / "off", max_workers=0)
            with using_runner(plain):
                untraced = ScenarioEngine(runner=plain, fidelity=TINY_FIDELITY).run(
                    scenario, "Morpheus-Basic"
                )

        with Telemetry(directory=tmp_path / "trace", enabled=True):
            traced_runner = ExperimentRunner(cache_dir=tmp_path / "on", max_workers=0)
            with using_runner(traced_runner):
                traced = ScenarioEngine(
                    runner=traced_runner, fidelity=TINY_FIDELITY
                ).run(scenario, "Morpheus-Basic")

        assert untraced.run_key == traced.run_key
        assert _scenario_snapshot(untraced) == _scenario_snapshot(traced)
        assert _cache_entries(tmp_path / "off") == _cache_entries(tmp_path / "on")


class TestServiceInertness:
    def test_traced_service_run_matches_untraced_serial(self, tmp_path):
        with Telemetry(enabled=False):
            serial = ExperimentRunner(cache_dir=tmp_path / "serial", max_workers=0)
            untraced = serial.run_plan(SPEC)

        with Telemetry(directory=tmp_path / "trace", enabled=True):
            service = _service_runner(tmp_path / "service")
            traced = service.run_plan(SPEC)

        assert _plan_snapshot(untraced) == _plan_snapshot(traced)
        assert _cache_entries(tmp_path / "serial") == _cache_entries(
            tmp_path / "service"
        )
        # The service path traced its job lifecycle.
        assert list((tmp_path / "trace").glob("events-*.jsonl"))
