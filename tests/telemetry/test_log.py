"""The shared logging configuration and its consumers."""

from __future__ import annotations

import logging
from unittest import mock

from repro.runner.service import _LeaseHeartbeat
from repro.telemetry import LOG_LEVEL_ENV, configure, get_logger
from repro.telemetry.log import ROOT_LOGGER


class TestGetLogger:
    def test_module_name_lands_under_repro(self):
        logger = get_logger("repro.runner.service")
        assert logger.name == "repro.runner.service"

    def test_bare_suffix_lands_under_repro(self):
        logger = get_logger("runner.service")
        assert logger.name == "repro.runner.service"

    def test_root_name_is_the_root(self):
        assert get_logger(ROOT_LOGGER).name == ROOT_LOGGER


class TestConfigure:
    def test_default_level_is_warning(self, monkeypatch):
        monkeypatch.delenv(LOG_LEVEL_ENV, raising=False)
        root = configure(force=True)
        assert root.level == logging.WARNING

    def test_env_level_is_honored(self, monkeypatch):
        monkeypatch.setenv(LOG_LEVEL_ENV, "debug")
        root = configure(force=True)
        assert root.level == logging.DEBUG
        monkeypatch.delenv(LOG_LEVEL_ENV)
        configure(force=True)

    def test_garbage_env_level_falls_back_to_warning(self, monkeypatch):
        monkeypatch.setenv(LOG_LEVEL_ENV, "CHATTY")
        root = configure(force=True)
        assert root.level == logging.WARNING
        monkeypatch.delenv(LOG_LEVEL_ENV)
        configure(force=True)

    def test_single_handler_and_no_propagation(self):
        configure(force=True)
        configure(force=True)
        root = logging.getLogger(ROOT_LOGGER)
        tagged = [h for h in root.handlers if getattr(h, "_repro_handler", False)]
        assert len(tagged) == 1
        assert root.propagate is False


class TestHeartbeatLogging:
    def test_unexpected_heartbeat_exception_is_logged_not_silent(self):
        queue = mock.Mock()
        queue.heartbeat.side_effect = RuntimeError("queue backend gone")
        thread = _LeaseHeartbeat(queue, "job-1", "worker-1", interval=0.05)
        with mock.patch("repro.runner.service.logger") as logger:
            thread.run()
        assert logger.exception.called
        message = logger.exception.call_args[0][0]
        assert "heartbeat" in message

    def test_lost_lease_exits_quietly(self):
        queue = mock.Mock()
        queue.heartbeat.return_value = False
        thread = _LeaseHeartbeat(queue, "job-1", "worker-1", interval=0.05)
        with mock.patch("repro.runner.service.logger") as logger:
            thread.run()
        assert not logger.exception.called
