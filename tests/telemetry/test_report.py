"""The report pipeline on a real 16-leaf service-mode trace (acceptance run).

One module-scoped fixture runs the acceptance-criterion workload — a
16-cell plan through the service backend under an active
:class:`~repro.telemetry.Telemetry` — and the tests assert the report
shows per-stage time, per-tier cache hit rates and queue-latency
percentiles, that the emitted JSONL passes schema validation, and that the
CLIs (``python -m repro.telemetry report/validate`` and
``python -m repro.runner.cache stats --json``) work end to end.
"""

from __future__ import annotations

import json

import pytest

from repro.runner import ExperimentRunner, ExperimentSpec
from repro.runner.queue import InProcessQueue
from repro.runner.service import DistributedBackend, ExperimentService
from repro.telemetry import Telemetry
from repro.telemetry.__main__ import main as telemetry_main
from repro.telemetry.report import percentile, render, summarize
from fidelity_utils import TINY_FIDELITY

#: 2 systems x 2 applications x 2 seeds x 2 SM splits = 16 cells.
SPEC = ExperimentSpec(
    systems=("BL", "IBL"),
    applications=("kmeans", "cfd"),
    seeds=(1, 2),
    sm_counts=(34, 68),
    fidelity=TINY_FIDELITY,
)


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    """(trace_dir, cache_dir, results) of a traced 16-leaf service-mode plan."""
    base = tmp_path_factory.mktemp("accept")
    trace_dir = base / "trace"
    cache_dir = base / "cache"
    with Telemetry(directory=trace_dir, enabled=True):
        runner = ExperimentRunner(cache_dir=cache_dir, max_workers=2, backend="service")
        service = ExperimentService(
            cache_dir=runner.cache_dir,
            queue=InProcessQueue(),
            spawn_workers=False,
            num_workers=2,
        )
        runner._service = DistributedBackend(service)
        results = runner.run_plan(SPEC)
    return trace_dir, cache_dir, results


class TestAcceptanceReport:
    def test_plan_ran_all_sixteen_cells(self, traced_run):
        _, _, results = traced_run
        assert len(list(results)) == 16

    def test_stage_breakdown_covers_the_pipeline(self, traced_run):
        trace_dir, _, _ = traced_run
        summary = summarize(trace_dir)
        stages = summary["stages"]
        for stage in ("runner.run_plan", "job.execute", "runner.replay", "service.drain"):
            assert stage in stages, f"missing stage {stage}"
            assert stages[stage]["count"] >= 1
            assert stages[stage]["total"] >= stages[stage]["max"] >= 0.0

    def test_cache_effectiveness_per_tier(self, traced_run):
        trace_dir, _, _ = traced_run
        cache = summarize(trace_dir)["cache"]
        for tier in ("measurements", "stats"):
            assert tier in cache, f"missing cache tier {tier}"
            assert 0.0 <= cache[tier]["hit_rate"] <= 1.0
            assert cache[tier].get("stores", 0) > 0
            assert cache[tier].get("bytes_written", 0) > 0

    def test_queue_latency_percentiles(self, traced_run):
        trace_dir, _, _ = traced_run
        queue = summarize(trace_dir)["queue"]
        assert queue["jobs"] == 16
        assert queue["completed"] == 16
        assert queue["lease_expiries"] == 0
        wait = queue["wait_seconds"]
        assert wait["count"] == 16
        assert 0.0 <= wait["p50"] <= wait["p95"] <= wait["p99"] <= wait["max"]
        assert queue["execute_seconds"]["count"] == 16

    def test_slowest_replays_listed_with_app(self, traced_run):
        trace_dir, _, _ = traced_run
        slowest = summarize(trace_dir)["slowest"]
        assert slowest
        assert all(entry["dur"] >= 0.0 for entry in slowest)
        assert all("app" in entry["attrs"] for entry in slowest)
        durations = [entry["dur"] for entry in slowest]
        assert durations == sorted(durations, reverse=True)

    def test_render_shows_the_required_sections(self, traced_run):
        trace_dir, _, _ = traced_run
        text = render(summarize(trace_dir))
        for section in (
            "time by stage",
            "cache effectiveness",
            "service queue",
            "slowest replays",
        ):
            assert section in text
        assert "queue wait" in text and "p95" in text

    def test_report_cli_text_and_json(self, traced_run, capsys):
        trace_dir, _, _ = traced_run
        assert telemetry_main(["report", str(trace_dir)]) == 0
        assert "time by stage" in capsys.readouterr().out
        assert telemetry_main(["report", str(trace_dir), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["queue"]["jobs"] == 16

    def test_validate_cli_accepts_the_trace(self, traced_run, capsys):
        trace_dir, _, _ = traced_run
        assert telemetry_main(["validate", str(trace_dir)]) == 0
        assert "all valid" in capsys.readouterr().out

    def test_cli_rejects_missing_directory(self, tmp_path, capsys):
        assert telemetry_main(["report", str(tmp_path / "nope")]) == 2
        capsys.readouterr()

    def test_validate_cli_flags_corrupt_trace(self, tmp_path, capsys):
        (tmp_path / "events-1-bad.jsonl").write_text('{"type": "mystery"}\n')
        assert telemetry_main(["validate", str(tmp_path)]) == 1
        capsys.readouterr()

    def test_cache_stats_json_cli(self, traced_run, capsys):
        from repro.runner.cache import main as cache_main

        _, cache_dir, _ = traced_run
        assert cache_main(["--cache-dir", str(cache_dir), "stats", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["directory"] == str(cache_dir)
        assert "measurements" in payload["tiers"]
        assert "stats" in payload["tiers"]


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_nearest_rank(self):
        values = [4.0, 1.0, 3.0, 2.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0
        assert percentile(values, 0.5) == 2.0  # ceil(0.5 * 4) - 1 = 1 -> second value
        assert percentile(values, 0.75) == 3.0
        assert percentile(values, 0.76) == 4.0

    def test_nearest_rank_one_to_hundred(self):
        # Regression: the old round(fraction * (n - 1)) formula returned 51.0
        # here (banker's rounding on an even-length sample).
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0.5) == 50.0
        assert percentile(values, 0.95) == 95.0
        assert percentile(values, 0.99) == 99.0
        assert percentile(values, 1.0) == 100.0

    def test_singleton(self):
        assert percentile([7.0], 0.0) == 7.0
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 1.0) == 7.0
