"""Golden-stats regression tests: fixed-seed end-to-end snapshots per system.

Each case runs one tiny fixed-seed leaf simulation end to end (trace
generation, hierarchy replay, analytic scoring, energy model) and compares
the full :class:`~repro.sim.stats.SimulationStats` against a JSON fixture
committed under ``tests/fixtures/golden_stats/``.

A mismatch means simulation behaviour changed.  That is allowed — this repo
evolves its models — but it must be **deliberate**: bump the matching schema
version in ``src/repro/runner/spec.py`` (see the "Contract" section of
ROADMAP.md — replay-behaviour changes bump ``REPLAY_SCHEMA_VERSION``,
scoring-only changes bump ``SCORE_SCHEMA_VERSION``) and regenerate the
fixtures with::

    PYTHONPATH=src REPRO_REGEN_GOLDEN=1 python -m pytest tests/test_golden_stats.py
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path

import pytest

from repro.core.config import MorpheusConfig
from repro.energy.model import EnergyModel
from repro.runner import ExperimentRunner
from repro.sim.simulator import SimulationConfig
from repro.workloads.applications import get_application

GOLDEN_DIR = Path(__file__).parent / "fixtures" / "golden_stats"
REGEN_ENV = "REPRO_REGEN_GOLDEN"

#: Relative tolerance for float comparison: tight enough to catch any real
#: model change, loose enough to ignore cross-platform libm noise.
REL_TOL = 1e-9

_TINY = dict(
    capacity_scale=1.0 / 64.0,
    trace_accesses=800,
    warmup_accesses=200,
    seed=7,
)

#: One tiny end-to-end case per system flavour: the plain baseline, the
#: power-gated improved baseline and one Morpheus variant with cache-mode
#: SMs, a predictor and both optimizations active.
GOLDEN_CASES = {
    "BL": SimulationConfig(
        num_compute_sms=68,
        power_gate_unused=False,
        system_name="BL",
        **_TINY,
    ),
    "IBL": SimulationConfig(
        num_compute_sms=34,
        power_gate_unused=True,
        system_name="IBL",
        **_TINY,
    ),
    "Morpheus-ALL": SimulationConfig(
        morpheus=MorpheusConfig(
            enable_compression=True, enable_indirect_mov_isa=True
        ),
        num_compute_sms=34,
        num_cache_sms=24,
        power_gate_unused=True,
        system_name="Morpheus-ALL",
        **_TINY,
    ),
}

SCHEMA_HINT = (
    "Golden stats changed for {system!r} at {path}: simulation behaviour "
    "differs from the committed fixture. If the change is intentional, bump "
    "the matching schema version in src/repro/runner/spec.py per the "
    "contract in ROADMAP.md (replay-behaviour changes bump "
    "REPLAY_SCHEMA_VERSION, scoring-only changes bump SCORE_SCHEMA_VERSION) "
    "and regenerate with REPRO_REGEN_GOLDEN=1."
)


def _simulate(system: str):
    runner = ExperimentRunner(
        max_workers=0, use_disk_cache=False, energy_model=EnergyModel()
    )
    stats = runner.simulate(get_application("kmeans"), GOLDEN_CASES[system])
    # JSON round-trip, so fixture comparison sees exactly what json stores
    # (e.g. dict keys stringified, tuples as lists).
    return json.loads(json.dumps(dataclasses.asdict(stats), sort_keys=True))


def _fixture_path(system: str) -> Path:
    return GOLDEN_DIR / f"{system}.json"


def _diff(expected, actual, path=""):
    """Recursive diff with a float tolerance; returns mismatch descriptions."""
    if isinstance(expected, dict) and isinstance(actual, dict):
        mismatches = []
        for key in sorted(set(expected) | set(actual)):
            if key not in expected:
                mismatches.append(f"{path}.{key}: unexpected new field {actual[key]!r}")
            elif key not in actual:
                mismatches.append(f"{path}.{key}: missing (was {expected[key]!r})")
            else:
                mismatches.extend(_diff(expected[key], actual[key], f"{path}.{key}"))
        return mismatches
    if isinstance(expected, (int, float)) and isinstance(actual, (int, float)) \
            and not isinstance(expected, bool) and not isinstance(actual, bool):
        if actual != pytest.approx(expected, rel=REL_TOL, abs=1e-12):
            return [f"{path}: {expected!r} -> {actual!r}"]
        return []
    if expected != actual:
        return [f"{path}: {expected!r} -> {actual!r}"]
    return []


@pytest.mark.parametrize("system", sorted(GOLDEN_CASES))
def test_golden_stats(system):
    path = _fixture_path(system)
    actual = _simulate(system)
    if os.environ.get(REGEN_ENV):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {path}")
    assert path.exists(), (
        f"missing golden fixture {path}; generate it with {REGEN_ENV}=1"
    )
    expected = json.loads(path.read_text())
    mismatches = _diff(expected, actual)
    assert not mismatches, (
        SCHEMA_HINT.format(system=system, path=path)
        + "\nMismatched fields:\n  "
        + "\n  ".join(mismatches)
    )


def test_fixtures_cover_every_case():
    committed = {p.stem for p in GOLDEN_DIR.glob("*.json")}
    assert committed == set(GOLDEN_CASES), (
        f"golden fixtures out of sync with GOLDEN_CASES: missing "
        f"{sorted(set(GOLDEN_CASES) - committed)}, "
        f"stale {sorted(committed - set(GOLDEN_CASES))}"
    )
