"""Tests for workload profiles, trace generation and synthetic traces."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.applications import (
    APPLICATIONS,
    COMPUTE_BOUND_APPS,
    MEMORY_BOUND_APPS,
    THRASHING_APPS,
    WorkloadClass,
    get_application,
)
from repro.workloads.generator import TraceGenerator
from repro.workloads.synthetic import hot_cold_trace, strided_trace, uniform_random_trace, zipfian_trace
from repro.workloads.trace import MemoryTrace, TraceEntry


class TestApplications:
    def test_table2_application_counts(self):
        assert len(MEMORY_BOUND_APPS) == 14
        assert len(COMPUTE_BOUND_APPS) == 3
        assert len(APPLICATIONS) == 17

    def test_paper_names_present(self):
        for name in ("p-bfs", "cfd", "kmeans", "sgem", "nw", "page-r", "lbm", "mri-q", "hotsp", "lib"):
            assert name in APPLICATIONS

    def test_classification(self):
        assert get_application("kmeans").is_memory_bound
        assert not get_application("mri-q").is_memory_bound

    def test_unknown_application(self):
        with pytest.raises(KeyError):
            get_application("does-not-exist")

    def test_thrashing_apps_have_per_sm_footprints(self):
        for name in THRASHING_APPS:
            assert get_application(name).per_sm_footprint_kib > 0

    def test_saturating_apps_have_no_per_sm_footprint(self):
        for name in MEMORY_BOUND_APPS:
            if name not in THRASHING_APPS:
                assert get_application(name).per_sm_footprint_kib == 0

    def test_footprint_grows_with_sms_for_thrashing_apps(self):
        profile = get_application("kmeans")
        assert profile.footprint_bytes(68) > profile.footprint_bytes(10)

    def test_llc_apki_positive_for_memory_bound(self):
        for name in MEMORY_BOUND_APPS:
            assert get_application(name).llc_apki() > 50

    def test_compute_bound_apps_have_low_llc_apki(self):
        for name in COMPUTE_BOUND_APPS:
            assert get_application(name).llc_apki() < 30

    def test_l1_hit_rate_improves_with_capacity(self):
        profile = get_application("cfd")
        bigger = profile.l1_hit_rate_for_capacity(256 * 1024)
        assert bigger > profile.l1_hit_rate
        assert bigger < 1.0

    def test_l1_hit_rate_baseline_unchanged(self):
        profile = get_application("cfd")
        assert profile.l1_hit_rate_for_capacity(128 * 1024) == pytest.approx(profile.l1_hit_rate)


class TestTrace:
    def test_entry_to_request(self):
        entry = TraceEntry(address=1000, is_write=True, sm_id=3)
        request = entry.to_request(issue_cycle=7)
        assert request.address == 896
        assert request.is_write
        assert request.sm_id == 3

    def test_footprint(self):
        trace = MemoryTrace([TraceEntry(address=i * 128) for i in range(10)])
        assert trace.unique_blocks() == 10
        assert trace.footprint_bytes() == 1280

    def test_write_and_atomic_fractions(self):
        entries = [TraceEntry(address=0, is_write=True), TraceEntry(address=0), TraceEntry(address=0, is_atomic=True)]
        trace = MemoryTrace(entries)
        assert trace.write_fraction() == pytest.approx(2 / 3)
        assert trace.atomic_fraction() == pytest.approx(1 / 3)

    def test_split_by_sm(self):
        trace = MemoryTrace([TraceEntry(address=0, sm_id=i % 2) for i in range(10)])
        groups = trace.split_by_sm()
        assert len(groups[0]) == 5
        assert len(groups[1]) == 5


class TestTraceGenerator:
    def test_deterministic_with_seed(self):
        profile = get_application("cfd")
        first = TraceGenerator(profile, 20, scale=1 / 32, seed=3).generate(500)
        second = TraceGenerator(profile, 20, scale=1 / 32, seed=3).generate(500)
        assert first.addresses() == second.addresses()

    def test_different_seeds_differ(self):
        profile = get_application("cfd")
        first = TraceGenerator(profile, 20, scale=1 / 32, seed=3).generate(500)
        second = TraceGenerator(profile, 20, scale=1 / 32, seed=4).generate(500)
        assert first.addresses() != second.addresses()

    def test_footprint_scales_down(self):
        profile = get_application("cfd")
        full = TraceGenerator(profile, 20, scale=1.0).parameters(100)
        scaled = TraceGenerator(profile, 20, scale=1 / 16).parameters(100)
        assert scaled.footprint_blocks < full.footprint_blocks

    def test_streaming_cursor_persists_across_calls(self):
        profile = get_application("stencil")  # high streaming fraction
        generator = TraceGenerator(profile, 20, scale=1 / 32, seed=1)
        first_blocks = {a // 128 for a in generator.generate(2000).addresses()}
        second = generator.generate(2000)
        footprint = generator.parameters(1).footprint_blocks
        second_streaming = {a // 128 for a in second.addresses() if a // 128 >= footprint}
        # Streaming blocks of the second trace must not repeat those of the first.
        assert not (second_streaming & {b for b in first_blocks if b >= footprint})

    def test_write_fraction_roughly_matches_profile(self):
        profile = get_application("lbm")
        trace = TraceGenerator(profile, 20, scale=1 / 32, seed=2).generate(4000)
        assert trace.write_fraction() == pytest.approx(profile.write_fraction, abs=0.1)

    def test_invalid_arguments(self):
        profile = get_application("cfd")
        with pytest.raises(ValueError):
            TraceGenerator(profile, 0)
        with pytest.raises(ValueError):
            TraceGenerator(profile, 10, scale=2.0)


class TestSyntheticTraces:
    def test_uniform_random_footprint_bounded(self):
        trace = uniform_random_trace(1000, footprint_bytes=64 * 1024, seed=1)
        assert trace.footprint_bytes() <= 64 * 1024

    def test_strided_covers_footprint(self):
        trace = strided_trace(512, footprint_bytes=512 * 128, stride_blocks=1)
        assert trace.unique_blocks() == 512

    def test_hot_cold_skews_to_hot_region(self):
        trace = hot_cold_trace(5000, footprint_bytes=1024 * 128, hot_fraction=0.1, hot_access_probability=0.9, seed=2)
        hot_blocks = int(1024 * 0.1)
        hot_accesses = sum(1 for a in trace.addresses() if a // 128 < hot_blocks)
        assert hot_accesses / len(trace) > 0.8

    def test_zipfian_is_skewed(self):
        trace = zipfian_trace(5000, footprint_bytes=4096 * 128, alpha=1.0, seed=3)
        counts = {}
        for address in trace.addresses():
            counts[address] = counts.get(address, 0) + 1
        top = sorted(counts.values(), reverse=True)[:10]
        assert sum(top) / len(trace) > 0.15

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            uniform_random_trace(10, footprint_bytes=0)
        with pytest.raises(ValueError):
            hot_cold_trace(10, 1024, hot_fraction=0.0)

    @given(st.integers(min_value=1, max_value=500), st.integers(min_value=1, max_value=64))
    @settings(max_examples=20, deadline=None)
    def test_uniform_trace_length_property(self, accesses, footprint_kib):
        trace = uniform_random_trace(accesses, footprint_bytes=footprint_kib * 1024)
        assert len(trace) == accesses
        assert all(entry.address % 128 == 0 for entry in trace)
